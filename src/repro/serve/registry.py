"""Session registry: admission control + a JSONL journal that survives
daemon restarts.

The journal (``<state_dir>/registry.jsonl``) is append-only during
operation — one line per session creation or state change, flushed
before the response goes out — and compacted to one line per live
session on startup.  Replaying it after a crash recovers every session;
what happens to sessions that were *in flight* when the daemon died is
decided by the session's own degradation policy, reusing the semantics
the monitor applies to condemned variants (``docs/RESILIENCE.md``):

========== ============= ==============================================
policy     recovers as   meaning
========== ============= ==============================================
kill-all   ``killed``    the paper's default: an interrupted execution
                         is dead; the client re-creates it.
quarantine ``quarantined`` held for inspection; ``resume`` rebuilds the
                         MVEE from the journaled spec and re-executes —
                         seeded determinism converges to the original
                         result.
restart    ``created``   automatically re-admitted; the next step or
                         run starts it from scratch.
========== ============= ==============================================
"""

from __future__ import annotations

import itertools
import json
import os
import threading

from repro.errors import (
    BadRequest,
    QuotaExceeded,
    SessionConflict,
    SessionNotFound,
)
from repro.logio import read_jsonl
from repro.serve.session import (
    CLOSEABLE_STATES,
    SESSION_STATES,
    Session,
    SessionSpec,
)

#: States that count against the concurrent-session quota.
ACTIVE_STATES = ("created", "running", "queued")

#: What an in-flight state becomes after a daemon restart, by policy.
RECOVERY = {"kill-all": "killed", "quarantine": "quarantined",
            "restart": "created"}


def recover_state(state: str, policy: str) -> str:
    """Post-restart state for a journaled session."""
    if state in ("running", "queued"):
        return RECOVERY[policy]
    return state


class SessionRegistry:
    """Thread-safe session table with quotas and journal persistence."""

    def __init__(self, state_dir: str | None = None,
                 max_sessions: int = 64,
                 max_cycles_per_session: float | None = None,
                 checkpoint_every: float | None = None):
        self.state_dir = state_dir
        self.max_sessions = max_sessions
        self.max_cycles_per_session = max_cycles_per_session
        #: Cycle cadence for session decision-log checkpoints; ``None``
        #: disables recording (sessions then recover by policy alone).
        self.checkpoint_every = checkpoint_every
        self.sessions: dict[str, Session] = {}
        self.peak_active = 0
        self.created_total = 0
        self.rejected_total = 0
        self.recovered: dict[str, str] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._journal = None
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            self._load_and_compact()

    # -- journal -------------------------------------------------------------

    @property
    def journal_path(self) -> str | None:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, "registry.jsonl")

    def _load_and_compact(self) -> None:
        """Replay the journal, apply recovery policy, rewrite compactly."""
        path = self.journal_path
        records: dict[str, dict] = {}
        if os.path.exists(path):
            # Same torn-tail-tolerant reader the decision logs use: a
            # crash mid-append leaves at worst one unparseable (or
            # unterminated) final line, which is dropped; interior junk
            # is skipped too — the journal is advisory, not a ledger.
            for entry in read_jsonl(path, on_bad="skip").records:
                if not isinstance(entry, dict):
                    continue
                sid = entry.get("id")
                if not sid:
                    continue
                if entry.get("event") == "create":
                    records[sid] = entry
                elif sid in records:
                    records[sid]["state"] = entry.get("state")
        highest = 0
        for sid, entry in records.items():
            state = entry.get("state", "created")
            if state == "closed" or state not in SESSION_STATES:
                continue
            try:
                spec = SessionSpec.from_dict(entry["spec"]).validate()
            except (KeyError, BadRequest):
                continue
            new_state = recover_state(state, spec.policy)
            if new_state != state:
                self.recovered[sid] = new_state
            session = Session(sid, spec,
                              max_cycles=self.max_cycles_per_session,
                              state_dir=self.state_dir,
                              checkpoint_every=self.checkpoint_every)
            session.state = new_state
            if (state in ("running", "queued")
                    and new_state == "created" and session.recording):
                # Interrupted restart-policy session with replay
                # artifacts on disk: the first step resumes in-flight
                # work from checkpoint + decision-log prefix instead of
                # re-executing from scratch.
                session.resume_from_disk = True
            self.sessions[sid] = session
            try:
                highest = max(highest, int(sid.split("-")[-1]))
            except ValueError:
                pass
        self._ids = itertools.count(highest + 1)
        # Compact: one create line per surviving session, current state.
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            for session in self.sessions.values():
                handle.write(json.dumps(
                    {"event": "create", "id": session.id,
                     "spec": session.spec.to_dict(),
                     "state": session.state}, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._journal = open(path, "a")

    def _append(self, entry: dict) -> None:
        if self._journal is None and self.journal_path is not None:
            self._journal = open(self.journal_path, "a")
        if self._journal is not None:
            self._journal.write(json.dumps(entry, sort_keys=True) + "\n")
            self._journal.flush()

    # -- session table -------------------------------------------------------

    def active_count(self) -> int:
        return sum(1 for s in self.sessions.values()
                   if s.state in ACTIVE_STATES)

    def create(self, spec: SessionSpec, bundle_dir: str | None = None
               ) -> Session:
        """Admit a new session or raise :class:`QuotaExceeded`.

        Admission is atomic with the count check — two concurrent
        creates cannot both squeeze past the quota.
        """
        spec.validate()
        with self._lock:
            active = self.active_count()
            if active >= self.max_sessions:
                self.rejected_total += 1
                raise QuotaExceeded(
                    f"session quota reached ({active}/"
                    f"{self.max_sessions} active); close a session or "
                    "retry later")
            session_id = f"s-{next(self._ids)}"
            session = Session(session_id, spec,
                              max_cycles=self.max_cycles_per_session,
                              bundle_dir=bundle_dir,
                              state_dir=self.state_dir,
                              checkpoint_every=self.checkpoint_every)
            self.sessions[session_id] = session
            self.created_total += 1
            self.peak_active = max(self.peak_active, active + 1)
            self._append({"event": "create", "id": session_id,
                          "spec": spec.to_dict(), "state": "created"})
            return session

    def get(self, session_id) -> Session:
        if not isinstance(session_id, str):
            raise BadRequest("request needs a string 'id' field")
        session = self.sessions.get(session_id)
        if session is None:
            raise SessionNotFound(f"no session {session_id!r}")
        return session

    def mark(self, session: Session, state: str) -> None:
        """Record a state change (journaled, so it survives restarts)."""
        session.state = state
        with self._lock:
            self._append({"event": "state", "id": session.id,
                          "state": state})

    def journal_state(self, session: Session) -> None:
        """Journal the session's *current* state (after a transition the
        session object made itself, e.g. inside :meth:`Session.step`)."""
        with self._lock:
            self._append({"event": "state", "id": session.id,
                          "state": session.state})

    def resume(self, session_id: str) -> Session:
        """Re-admit a quarantined session as a fresh ``created`` one.

        The new session shares the old spec (and therefore converges to
        the same simulated timeline); the quarantined record is closed.
        """
        session = self.get(session_id)
        with session.lock:
            if session.state != "quarantined":
                raise SessionConflict(
                    f"session {session_id} is {session.state}; only "
                    "quarantined sessions can be resumed")
            session.state = "created"
            session.release_writer()
            session._mvee = None
            session._hub = None
            session.result = None
            session.ticket = None
            session.steps = 0
        with self._lock:
            self._append({"event": "state", "id": session_id,
                          "state": "created"})
        return session

    def close(self, session_id: str) -> Session:
        session = self.get(session_id)
        with session.lock:
            if session.state not in CLOSEABLE_STATES:
                raise SessionConflict(
                    f"session {session_id} is {session.state}; close "
                    "accepts " + ", ".join(CLOSEABLE_STATES))
            session.state = "closed"
            session.release_writer()
            session._mvee = None
            session._hub = None
        with self._lock:
            self._append({"event": "state", "id": session_id,
                          "state": "closed"})
        return session

    def status(self) -> dict:
        with self._lock:
            by_state = {state: 0 for state in SESSION_STATES}
            for session in self.sessions.values():
                by_state[session.state] += 1
            return {"sessions": by_state,
                    "active": self.active_count(),
                    "max_sessions": self.max_sessions,
                    "peak_active": self.peak_active,
                    "created_total": self.created_total,
                    "rejected_total": self.rejected_total,
                    "recovered": dict(self.recovered)}

    def table(self, limit: int = 32) -> list[dict]:
        """Per-session rows for the live view (``repro top``):
        in-flight sessions before terminal ones, then creation order,
        capped at ``limit`` so a long-lived daemon's status stays
        bounded."""
        in_flight = ("created", "running", "queued")
        with self._lock:
            sessions = list(self.sessions.values())
        sessions.sort(key=lambda s: (s.state not in in_flight,
                                     len(s.id), s.id))
        rows = []
        for session in sessions[:max(0, limit)]:
            rows.append({
                "id": session.id,
                "state": session.state,
                "workload": session.spec.workload,
                "steps": session.steps,
                "verdict": (session.result or {}).get("verdict"),
            })
        return rows

    def shutdown(self) -> None:
        for session in self.sessions.values():
            session.release_writer()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
