"""Sessions: one lockstep MVEE execution owned by the serve daemon.

A session binds a workload, agent, variant count, optional fault plan,
and seed — exactly the knobs of a single ``repro run`` invocation — and
can be driven two ways:

* **stepped** (the ``step`` op): the daemon holds the live
  :class:`~repro.core.mvee.MVEE` and advances it in bounded event
  batches via :meth:`MVEE.advance`, streaming verdicts, recovery
  events, and metrics snapshots back after each batch.  Budgeted
  stepping is byte-identical to a one-shot run by construction (the
  event heap is popped in the same order either way).
* **batch** (the ``run`` op): the session is shipped as a pickle-safe
  spec through the shared :class:`repro.par.engine.CellExecutor`, so N
  sessions fan out across one *persistent* worker pool — workers fork
  once at daemon startup demand and serve every later session warm,
  in whichever execution environment the daemon was started with
  (``--env inline|thread|process``) — without breaking per-cell seed
  derivation.

Both paths end in the same result dict, whose ``obs_digest`` (see
:meth:`repro.obs.ObsHub.digest`) is the byte-identity anchor against
single-shot ``repro run`` for the same (workload, agent, seed).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import BadRequest, SessionConflict
from repro.faults import DEGRADATION_POLICIES as POLICY_NAMES

#: Every state a session can be in.  Transitions:
#: created -> running -> finished | killed       (stepped path)
#: created -> queued -> finished | killed        (batch path)
#: any in-flight state -> quarantined | killed | created   (daemon restart,
#:   per degradation policy — see registry.recover_state)
#: finished | quarantined | killed -> closed
SESSION_STATES = ("created", "running", "queued", "finished",
                  "quarantined", "killed", "closed")

#: States a close() accepts from; everything else must finish or be
#: killed first.
CLOSEABLE_STATES = ("created", "finished", "quarantined", "killed")

AGENT_NAMES = ("none", "total_order", "partial_order", "wall_of_clocks",
               "dmt")

#: Default nginx sizing for serve sessions: short enough that a session
#: completes in milliseconds, long enough to exercise the acceptor pool
#: and produce non-trivial sync traffic.
SHORT_NGINX = {"pool_threads": 2, "connections": 2,
               "requests_per_connection": 1, "work_cycles": 5000.0}


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to (re)build a session's MVEE, JSON-safe.

    The spec is the unit of persistence: the registry journals it, a
    daemon restart replays it, and the batch path pickles it into a
    worker.  Rebuilding from the same spec reproduces the same
    simulated timeline (seeded determinism), which is what makes
    quarantine-resume converge to the original result.
    """

    workload: str
    agent: str = "wall_of_clocks"
    variants: int = 2
    seed: int = 1
    scale: float = 0.25
    #: Fault plan text as accepted by ``repro run --faults`` (None = no
    #: faults); stored as text and re-parsed so it journals as JSON.
    faults: str | None = None
    fault_seed: int = 0
    policy: str = "kill-all"
    watchdog: float | None = None
    race_detect: bool = False
    #: Restart resync strategy: "history" or "checkpoint" (the latter
    #: needs a checkpointer attached; see MonitorPolicy.resync_mode).
    resync_mode: str = "history"
    #: Workload-specific overrides (nginx: pool_threads, connections,
    #: requests_per_connection, work_cycles).
    params: dict = field(default_factory=dict)
    #: Host trace-context wire dict (``repro.telemetry``): set by the
    #: daemon from the creating request, journaled with the spec, and
    #: pickled into batch workers — so a session's host spans (even
    #: after a daemon crash + resume) carry the original trace_id.
    #: Never a simulated quantity; ``None`` keeps pre-telemetry specs
    #: byte-identical on the wire and in the journal.
    trace: dict | None = None

    def validate(self) -> "SessionSpec":
        from repro.workloads.spec import ALL_SPECS

        if self.workload != "nginx" and self.workload not in ALL_SPECS:
            raise BadRequest(f"unknown workload {self.workload!r} "
                             "(see the 'workloads' op)")
        if self.agent not in AGENT_NAMES:
            raise BadRequest(f"unknown agent {self.agent!r}; expected "
                             "one of " + ", ".join(AGENT_NAMES))
        if self.policy not in POLICY_NAMES:
            raise BadRequest(f"unknown policy {self.policy!r}; expected "
                             "one of " + ", ".join(POLICY_NAMES))
        if self.resync_mode not in ("history", "checkpoint"):
            raise BadRequest(f"unknown resync_mode "
                             f"{self.resync_mode!r}; expected 'history' "
                             "or 'checkpoint'")
        if not 2 <= int(self.variants) <= 16:
            raise BadRequest("variants must be between 2 and 16 "
                             "(an MVEE needs at least two)")
        if not 0.001 <= float(self.scale) <= 4.0:
            raise BadRequest("scale must be between 0.001 and 4.0")
        if self.faults is not None:
            from repro.errors import ConfigError
            from repro.faults import parse_fault_plan

            try:
                parse_fault_plan(self.faults, seed=self.fault_seed,
                                 n_variants=self.variants)
            except ConfigError as exc:
                raise BadRequest(f"bad fault plan: {exc}") from None
        if not isinstance(self.params, dict):
            raise BadRequest("params must be an object")
        if self.trace is not None and not isinstance(self.trace, dict):
            raise BadRequest("trace must be an object (or omitted)")
        return self

    def to_dict(self) -> dict:
        data = {"workload": self.workload, "agent": self.agent,
                "variants": self.variants, "seed": self.seed,
                "scale": self.scale, "faults": self.faults,
                "fault_seed": self.fault_seed, "policy": self.policy,
                "watchdog": self.watchdog,
                "race_detect": self.race_detect,
                "resync_mode": self.resync_mode,
                "params": dict(self.params)}
        if self.trace is not None:
            data["trace"] = dict(self.trace)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSpec":
        if not isinstance(data, dict):
            raise BadRequest("spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise BadRequest("unknown spec field(s): "
                             + ", ".join(sorted(extra)))
        if "workload" not in data:
            raise BadRequest("spec needs a 'workload' field")
        try:
            return cls(**data)
        except TypeError as exc:
            raise BadRequest(f"bad spec: {exc}") from None


def build_mvee(spec: SessionSpec, obs=None, replay=None,
               checkpoints=None):
    """Instantiate the MVEE for a spec, plus the native-cycle baseline.

    Mirrors the CLI paths exactly — synthetic twins match ``repro run``
    (``max_cycles = native * 400``), nginx matches
    :func:`repro.experiments.runner.run_nginx_condition` — so a serve
    session's verdict and obs digest are byte-identical to the
    equivalent single-shot command.
    """
    from repro.core.divergence import MonitorPolicy
    from repro.core.mvee import MVEE

    agent = None if spec.agent == "none" else spec.agent
    policy = MonitorPolicy(degradation=spec.policy,
                           watchdog_cycles=spec.watchdog,
                           resync_mode=spec.resync_mode)
    plan = None
    if spec.faults is not None:
        from repro.faults import parse_fault_plan

        plan = parse_fault_plan(spec.faults, seed=spec.fault_seed,
                                n_variants=spec.variants)
    detector = None
    if spec.race_detect:
        from repro.races import RaceDetector

        detector = RaceDetector()
    if spec.workload == "nginx":
        from repro.experiments.runner import RACE_SWEEP_COSTS
        from repro.workloads.nginx import (
            NginxConfig,
            NginxServer,
            TrafficStats,
            make_traffic,
        )

        params = dict(SHORT_NGINX)
        params.update(spec.params)
        try:
            config = NginxConfig(**params)
        except TypeError as exc:
            raise BadRequest(f"bad nginx params: {exc}") from None
        stats = TrafficStats()
        mvee = MVEE(NginxServer(config), variants=spec.variants,
                    agent=agent, seed=spec.seed,
                    costs=RACE_SWEEP_COSTS, policy=policy,
                    with_network=True,
                    traffic=make_traffic(config, 0.0, stats),
                    max_cycles=5e9, obs=obs, faults=plan,
                    races=detector, replay=replay,
                    checkpoints=checkpoints)
        return mvee, None
    from repro.experiments.runner import native_cycles
    from repro.workloads.synthetic import make_benchmark

    if spec.params:
        raise BadRequest("params are only accepted for the nginx "
                         "workload")
    native = native_cycles(spec.workload, scale=spec.scale,
                           seed=spec.seed)
    mvee = MVEE(make_benchmark(spec.workload, scale=spec.scale),
                variants=spec.variants, agent=agent, seed=spec.seed,
                policy=policy, max_cycles=native * 400, obs=obs,
                faults=plan, races=detector, replay=replay,
                checkpoints=checkpoints)
    return mvee, native


def outcome_to_result(outcome, native: float | None,
                      obs=None, bundle_path: str | None = None) -> dict:
    """Fold an MVEEOutcome into the JSON result both paths return."""
    result = {
        "verdict": outcome.verdict,
        "cycles": outcome.cycles,
        "syscalls": (outcome.report.total_syscalls
                     if outcome.report is not None else None),
        "sync_ops": (outcome.report.total_sync_ops
                     if outcome.report is not None else None),
        "faults_injected": len(outcome.faults),
        "quarantines": [event.summary() for event in outcome.quarantines],
        "races": (len(outcome.races.races)
                  if outcome.races is not None else 0),
        "divergence": (outcome.divergence.explain()
                       if outcome.divergence is not None else None),
        "obs_digest": obs.digest() if obs is not None else None,
        "bundle": None,
    }
    if native:
        result["slowdown"] = outcome.cycles / native
    if bundle_path and outcome.obs_bundle is not None:
        outcome.obs_bundle.save(bundle_path)
        result["bundle"] = bundle_path
    return result


class Session:
    """One live, step-drivable session inside the daemon.

    The MVEE is built lazily on the first step so that ``create`` stays
    cheap (admission control responds in microseconds) and so a
    batch-mode session never materialises guest state in the daemon
    process.  Each session carries its own lock: steps on one session
    serialize, steps on different sessions proceed concurrently.
    """

    def __init__(self, session_id: str, spec: SessionSpec,
                 max_cycles: float | None = None,
                 bundle_dir: str | None = None,
                 state_dir: str | None = None,
                 checkpoint_every: float | None = None):
        self.id = session_id
        self.spec = spec
        self.state = "created"
        self.max_cycles = max_cycles
        self.bundle_dir = bundle_dir
        #: When both are set, stepped execution records its decision
        #: stream and checkpoints to ``state_dir`` so an interrupted
        #: session can be resumed from checkpoint + log prefix.
        self.state_dir = state_dir
        self.checkpoint_every = checkpoint_every
        #: Set by the registry when on-disk replay artifacts from a
        #: previous daemon incarnation should be resumed.
        self.resume_from_disk = False
        #: Populated after a successful resume (diagnostics).
        self.resumed: dict | None = None
        self.lock = threading.Lock()
        self.result: dict | None = None
        #: CellExecutor ticket while the session is queued (batch path).
        self.ticket: int | None = None
        self.steps = 0
        self.events_processed = 0
        self._mvee = None
        self._hub = None
        self._native = None
        self._recorder = None
        self._writer = None
        self._event_seq = itertools.count()
        self._seen_recovery = 0
        self._seen_races = 0
        self._seen_faults = 0

    @property
    def recording(self) -> bool:
        return (self.state_dir is not None
                and self.checkpoint_every is not None)

    def decision_log_path(self) -> str | None:
        if self.state_dir is None:
            return None
        import os

        return os.path.join(self.state_dir,
                            f"{self.id}.decisions.jsonl")

    def checkpoint_path(self) -> str | None:
        if self.state_dir is None:
            return None
        import os

        return os.path.join(self.state_dir, f"{self.id}.ckpt.json")

    # -- stepped execution ---------------------------------------------------

    def _ensure_mvee(self):
        if self._mvee is not None:
            return None
        from repro.obs import ObsHub

        self._hub = ObsHub(trace=False)
        if self.recording:
            return self._build_recording()
        self._mvee, self._native = build_mvee(self.spec, obs=self._hub)
        self.state = "running"
        return None

    def _build_recording(self):
        """Build (or resume) a recording MVEE; returns a finished
        outcome in the rare case the run completed while replaying a
        resumed prefix."""
        from repro.replay import (
            CheckpointPolicy,
            Checkpointer,
            CheckpointStore,
            DecisionLog,
            DecisionLogWriter,
            DecisionRecorder,
            resume_recorded,
        )

        log_path = self.decision_log_path()
        ckpt_path = self.checkpoint_path()
        outcome = None
        if self.resume_from_disk:
            self.resume_from_disk = False
            handle = resume_recorded(
                self.spec, log_path, ckpt_path,
                checkpoint_every=self.checkpoint_every, hub=self._hub)
            if handle is not None:
                self._mvee = handle.mvee
                self._native = handle.native
                self._recorder = handle.recorder
                self._writer = DecisionLogWriter(log_path, handle.log)
                self.resumed = {
                    "checkpoint": handle.checkpoint.index,
                    "at_cycles": handle.checkpoint.at_cycles,
                    "replayed_records": handle.checkpoint.decision_index,
                    "discarded_records": handle.discarded_records,
                }
                self.state = "running"
                return handle.outcome
        if self._mvee is None:
            log = DecisionLog(spec=self.spec.to_dict(),
                              meta={"session": self.id})
            self._recorder = DecisionRecorder(log)
            self._mvee, self._native = build_mvee(
                self.spec, obs=self._hub, replay=self._recorder)
            checkpointer = Checkpointer(
                self._mvee,
                CheckpointPolicy(every_cycles=self.checkpoint_every),
                recorder=self._recorder,
                store=CheckpointStore(path=ckpt_path), obs=self._hub)
            self._mvee.checkpointer = checkpointer
            if hasattr(self._mvee.monitor, "checkpoints"):
                self._mvee.monitor.checkpoints = checkpointer.store
            checkpointer.arm()
            self._writer = DecisionLogWriter(log_path, log)
        self.state = "running"
        return outcome

    def step(self, max_events: int) -> dict:
        """Advance by at most ``max_events`` simulator events.

        Returns the step envelope: new events since the previous step
        (faults, recovery actions, races), a live metrics snapshot, and
        — once the run completes — the final result dict.  Caller holds
        ``self.lock``.

        When the spec carries a trace context and host telemetry is
        recording, each step emits one host-time span on the session's
        track, annotated ``resumed`` when the session was rebuilt from
        on-disk replay artifacts — the span keeps the *original*
        trace_id across daemon incarnations because the spec (and its
        trace) is journaled.
        """
        from repro.telemetry.context import TraceContext
        from repro.telemetry.spans import enabled, span

        if self.spec.trace is None or not enabled():
            return self._step_inner(max_events)
        parent = TraceContext.from_dict(self.spec.trace)
        ctx = parent.child() if parent is not None else None
        was_resume = self.resume_from_disk or self.resumed is not None
        with span("session.step", ctx=ctx, service="session",
                  track=f"session {self.id}", session=self.id) as live:
            envelope = self._step_inner(max_events)
            if was_resume or self.resumed is not None:
                live.attrs["resumed"] = True
            live.attrs["steps"] = self.steps
            if envelope.get("done"):
                live.attrs["done"] = True
            return envelope

    def _step_inner(self, max_events: int) -> dict:
        if self.state not in ("created", "running"):
            raise SessionConflict(
                f"session {self.id} is {self.state}; step needs a "
                "created or running session")
        outcome = self._ensure_mvee()
        if outcome is None:
            outcome = self._mvee.advance(max_events)
        if self._writer is not None:
            self._writer.flush()
        self.steps += 1
        self.events_processed += max_events if outcome is None else 0
        envelope = {
            "done": outcome is not None,
            "state": self.state,
            "steps": self.steps,
            "events": self._drain_events(),
            "cycles": self._mvee.machine.now,
        }
        if outcome is not None:
            bundle_path = None
            if self.bundle_dir and outcome.obs_bundle is not None:
                bundle_path = f"{self.bundle_dir}/{self.id}.bundle.json"
            self.result = outcome_to_result(outcome, self._native,
                                            obs=self._hub,
                                            bundle_path=bundle_path)
            if self.resumed is not None:
                self.result["resumed"] = dict(self.resumed)
            self.state = "finished"
            envelope["state"] = self.state
            envelope["result"] = self.result
            if self._writer is not None:
                self._writer.close(
                    steps=self._recorder.steps,
                    verdict=outcome.verdict, cycles=outcome.cycles,
                    obs_digest=self.result.get("obs_digest"))
                self._writer = None
        elif (self.max_cycles is not None
                and self._mvee.machine.now > self.max_cycles):
            self.state = "killed"
            self.result = {"verdict": "killed",
                           "reason": "cycle quota exceeded",
                           "cycles": self._mvee.machine.now}
            envelope["state"] = self.state
            envelope["result"] = self.result
            self.release_writer()
        return envelope

    def release_writer(self) -> None:
        """Close the decision-log handle without sealing (the log keeps
        its torn-tolerant prefix for a later resume)."""
        if self._writer is not None:
            self._writer.abandon()
            self._writer = None

    def _drain_events(self) -> list[dict]:
        """New fault/recovery/race records since the last step.

        Each record is delivered exactly once, wrapped with a
        session-level ``stream_seq`` (the records' own fields — some
        carry a per-variant ``seq`` — are passed through untouched).
        """
        hub = self._hub
        events = []

        def _wrap(kind: str, record: dict) -> dict:
            return {"stream_seq": next(self._event_seq), "type": kind,
                    "record": dict(record)}

        for record in hub.fault_log[self._seen_faults:]:
            events.append(_wrap("fault", record))
        self._seen_faults = len(hub.fault_log)
        for record in hub.recovery_log[self._seen_recovery:]:
            events.append(_wrap("recovery", record))
        self._seen_recovery = len(hub.recovery_log)
        for record in hub.race_log[self._seen_races:]:
            events.append(_wrap("race", record))
        self._seen_races = len(hub.race_log)
        return events

    def metrics_snapshot(self) -> dict:
        if self._hub is None:
            return {}
        return self._hub.metrics.snapshot()

    def describe(self) -> dict:
        return {"id": self.id, "state": self.state,
                "spec": self.spec.to_dict(), "steps": self.steps,
                "result": self.result}


def run_session_cell(spec_dict: dict, session_id: str,
                     bundle_dir: str | None = None) -> dict:
    """Batch path: execute one session start-to-finish in a worker.

    Module-level and argument-pure so :class:`CellTask` pickles it by
    reference into a forked worker; builds a fresh ObsHub there, so the
    digest is computed from the same simulated quantities as the
    stepped path.
    """
    from contextlib import nullcontext

    from repro.obs import ObsHub
    from repro.telemetry.context import TraceContext
    from repro.telemetry.spans import enabled, span

    spec = SessionSpec.from_dict(spec_dict).validate()
    host_span = nullcontext()
    if spec.trace is not None and enabled():
        parent = TraceContext.from_dict(spec.trace)
        host_span = span("session.run",
                         ctx=parent.child() if parent else None,
                         service="session",
                         track=f"session {session_id}",
                         session=session_id)
    hub = ObsHub(trace=False)
    with host_span:
        mvee, native = build_mvee(spec, obs=hub)
        outcome = mvee.run()
    bundle_path = None
    if bundle_dir and outcome.obs_bundle is not None:
        bundle_path = f"{bundle_dir}/{session_id}.bundle.json"
    return outcome_to_result(outcome, native, obs=hub,
                             bundle_path=bundle_path)
