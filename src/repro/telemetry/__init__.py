"""Host-level observability for the serve/par stack.

``repro.obs`` observes the *guest*: every trace event is stamped in
simulated cycles inside one machine, and its digest is the byte-identity
anchor for the whole repo.  This package observes the *host* — the
daemon, its sessions, and the pool workers that execute them — and is
built around one non-negotiable contract:

    **telemetry never reads the machine clock.**

Spans and metrics are stamped exclusively with host monotonic time
(:func:`time.monotonic_ns`, :func:`time.perf_counter`), so attaching
telemetry cannot move a simulated cycle, change a verdict, or perturb
any sweep digest (pinned by ``tests/test_determinism.py``).

Four pieces:

* **context + spans** (:mod:`~repro.telemetry.context`,
  :mod:`~repro.telemetry.spans`) — a ``trace_id``/``span_id`` context
  created at CLI entry points and serve requests, propagated through
  the JSON-lines protocol, :class:`~repro.serve.session.SessionSpec`,
  and :class:`~repro.par.cells.CellTask` envelopes into pool workers;
  per-process span logs merge into one Chrome ``trace_event`` file.
* **host metrics** (:mod:`~repro.telemetry.hostmetrics`,
  :mod:`~repro.telemetry.prometheus`) — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of host counters/gauges/
  histograms with a Prometheus text-format renderer, served by the
  daemon's ``metrics`` op and ``repro telemetry dump``.
* **live view** (:mod:`~repro.telemetry.top`) — ``repro top`` polls
  ``serve status`` + ``metrics`` into a refreshing terminal table.
* **overhead gate** (:mod:`~repro.telemetry.overhead`) — telemetry
  measures its own host cost into the BENCH v2 report's
  ``observability_overhead`` block, compared warn-only by
  ``repro bench --compare``.

See ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

from repro.telemetry.context import (
    TraceContext,
    current_context,
    new_context,
    use_context,
    wire_context,
)
from repro.telemetry.hostmetrics import (
    host_registry,
    host_snapshot,
    inc,
    observe_seconds,
    publish_executor_stats,
    publish_pool_stats,
    publish_serve_status,
    reset_host_metrics,
    set_gauge,
)
from repro.telemetry.prometheus import parse_prometheus, render_prometheus
from repro.telemetry.spans import (
    configure,
    enabled,
    merge_host_trace,
    span,
    telemetry_dir,
)

__all__ = [
    "TraceContext",
    "current_context",
    "new_context",
    "use_context",
    "wire_context",
    "configure",
    "enabled",
    "span",
    "telemetry_dir",
    "merge_host_trace",
    "host_registry",
    "host_snapshot",
    "reset_host_metrics",
    "inc",
    "set_gauge",
    "observe_seconds",
    "publish_pool_stats",
    "publish_executor_stats",
    "publish_serve_status",
    "render_prometheus",
    "parse_prometheus",
]
