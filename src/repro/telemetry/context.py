"""Trace context: the (trace_id, span_id) pair that follows a request.

A root context is created at every CLI entry point and at every serve
request that arrives without one; children are derived per hop (client
rpc -> daemon op -> session -> pool worker) so the merged host trace
reconstructs the full causal path.  The wire form is a small JSON
object, carried as an optional ``"trace"`` field on protocol requests,
on :class:`~repro.serve.session.SessionSpec` (which journals it, so a
resumed session keeps its original trace_id across daemon death), and
on :class:`~repro.par.cells.CellTask` envelopes into pool workers.

IDs come from :func:`os.urandom` — host randomness, never the seeded
guest RNG, so creating a context cannot perturb a simulated run.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "new_context",
    "current_context",
    "use_context",
    "wire_context",
]

#: Wire field carrying a trace context on protocol requests, specs, and
#: cell tasks.
TRACE_KEY = "trace"

_local = threading.local()


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace (immutable, JSON-safe)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self) -> "TraceContext":
        """A new span under this one, same trace."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_id(),
                            parent_id=self.span_id)

    def to_dict(self) -> dict:
        data = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        return data

    @classmethod
    def from_dict(cls, data) -> "TraceContext | None":
        """Parse a wire dict; tolerant — garbage yields ``None``, never
        an exception (telemetry must not fail a request)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            span_id = _new_id()
        parent = data.get("parent_id")
        if not isinstance(parent, str):
            parent = None
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent)


def new_context() -> TraceContext:
    """A fresh root context (new trace_id)."""
    return TraceContext(trace_id=_new_id(), span_id=_new_id())


def current_context() -> TraceContext | None:
    """The context installed on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use_context(ctx: TraceContext | None):
    """Install ``ctx`` as the thread's current context for the block.

    ``None`` is accepted and is a no-op, so call sites can pass through
    whatever :meth:`TraceContext.from_dict` returned.
    """
    if ctx is None:
        yield None
        return
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def wire_context() -> dict | None:
    """The current context's wire dict, or ``None`` (for attaching to
    outgoing requests and task envelopes)."""
    ctx = current_context()
    return ctx.to_dict() if ctx is not None else None
