"""The process-wide host metrics registry.

Reuses the counter/gauge/histogram classes from
:mod:`repro.obs.metrics` — the same deterministic-snapshot machinery
that serves the guest — but holds *host* quantities: pool spawns and
respawns, steals, queue depth, shm-vs-pipe transport arms, session
admission, daemon op latency.  One registry per process, guarded by a
lock (the daemon's handler threads write concurrently).

Two feeding disciplines:

* **event-time** — cheap increments at the site of the event
  (:func:`inc`, :func:`observe_seconds`): op latency, transport arm.
* **scrape-time** — cumulative counters that already live somewhere
  authoritative (the :class:`~repro.par.pool.WorkerPool`'s amortisation
  counters, the steal scheduler, the session registry) are *published*
  into the registry when it is rendered
  (:func:`publish_pool_stats` & co).  The pool's own counters stay the
  single source of truth: ``serve status`` and the ``metrics`` op both
  read them, so the two surfaces can never disagree.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "LATENCY_BUCKETS_S",
    "host_registry",
    "reset_host_metrics",
    "inc",
    "set_gauge",
    "observe_seconds",
    "publish_pool_stats",
    "publish_executor_stats",
    "publish_serve_status",
    "host_snapshot",
]

#: Bucket bounds (seconds) for host latency histograms: log-spaced from
#: "one dict lookup" to "something is wedged".
LATENCY_BUCKETS_S = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
    0.1, 0.3, 1.0, 3.0, 10.0,
)

_lock = threading.Lock()
_registry = MetricsRegistry()


def host_registry() -> MetricsRegistry:
    """This process's host registry (shared, long-lived)."""
    return _registry


def reset_host_metrics() -> None:
    """Drop every host metric (tests)."""
    global _registry
    with _lock:
        _registry = MetricsRegistry()


def inc(name: str, amount: int = 1) -> None:
    with _lock:
        _registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    with _lock:
        _registry.gauge(name).set(float(value))


def observe_seconds(name: str, seconds: float) -> None:
    with _lock:
        _registry.histogram(name, LATENCY_BUCKETS_S).observe(
            float(seconds))


def _set_counter(name: str, value) -> None:
    """Publish a cumulative count owned elsewhere.

    The source (pool, scheduler, registry) is monotonic; publishing
    advances our counter to match, never backwards — a freshly reset
    source (new pool) leaves the high-water value in place rather than
    fabricating a negative increment.
    """
    counter = _registry.counter(name)
    value = int(value or 0)
    if value > counter.value:
        counter.inc(value - counter.value)


def publish_pool_stats(stats: dict | None) -> None:
    """Mirror :meth:`repro.par.pool.WorkerPool.stats` (plus the steal
    scheduler's counters when present) into the host registry."""
    if not stats:
        return
    with _lock:
        for key in ("spawned", "respawns", "stall_kills", "reaped",
                    "tasks", "batches"):
            if key in stats:
                _set_counter(f"host.pool.{key}", stats[key])
        for key in ("size", "alive"):
            if key in stats:
                _registry.gauge(f"host.pool.{key}").set(
                    float(stats[key] or 0))
        scheduler = stats.get("scheduler") or {}
        for key in ("steals", "cells_stolen"):
            if key in scheduler:
                _set_counter(f"host.steal.{key}", scheduler[key])


def publish_executor_stats(stats: dict | None) -> None:
    """Mirror a :class:`~repro.par.engine.CellExecutor` stats block:
    ticket counts, queue depth, and the nested pool/scheduler stats."""
    if not stats:
        return
    with _lock:
        for key in ("submitted", "completed"):
            if key in stats:
                _set_counter(f"host.executor.{key}", stats[key])
        for key in ("in_flight", "queued", "jobs"):
            if key in stats:
                _registry.gauge(f"host.executor.{key}").set(
                    float(stats[key] or 0))
    pool = stats.get("pool")
    if isinstance(pool, dict):
        merged = dict(pool)
        if isinstance(stats.get("scheduler"), dict):
            merged["scheduler"] = stats["scheduler"]
        publish_pool_stats(merged)


def publish_serve_status(status: dict | None) -> None:
    """Mirror the session registry's admission counters and per-state
    session gauges from a ``serve status``-shaped dict."""
    if not status:
        return
    with _lock:
        for key in ("created_total", "rejected_total"):
            if key in status:
                _set_counter(f"host.serve.sessions_{key}", status[key])
        for key in ("peak_active", "active"):
            if key in status:
                _registry.gauge(f"host.serve.sessions_{key}").set(
                    float(status[key] or 0))
        by_state = status.get("sessions") or {}
        for state, count in by_state.items():
            _registry.gauge(f"host.serve.sessions_{state}").set(
                float(count or 0))


def host_snapshot() -> dict:
    """Deterministically-ordered snapshot of every host metric."""
    with _lock:
        return _registry.snapshot()
