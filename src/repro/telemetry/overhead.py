"""Telemetry measures its own host cost (the overhead gate).

Taming Parallelism §6 accounts for the monitor's overhead on the
system it monitors; this module applies the same discipline to the
observability plane itself.  :func:`measure_cell_overhead` runs one
benchmark cell with telemetry off and on (span recording to a scratch
directory, host-metric observation per run) and reports the wall-clock
delta *and* whether the canonical outputs stayed identical — the
zero-perturbation contract, self-checked on every bench run.

The resulting ``observability_overhead`` block lands in the BENCH v2
report and is compared warn-only by ``repro bench --compare`` (host
wall jitters across runners; a moved digest, by contrast, hard-fails).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import replace

__all__ = ["measure_cell_overhead", "OVERHEAD_REPEATS"]

#: Per-arm repetitions; the minimum wall is reported (noise floor).
OVERHEAD_REPEATS = 3


def measure_cell_overhead(task, repeats: int = OVERHEAD_REPEATS) -> dict:
    """Run ``task`` bare and traced; return the overhead block.

    ``task`` is a :class:`~repro.par.cells.CellTask` (typically the
    bench matrix's first cell).  Both arms run after a shared warmup in
    this process, so memo caches and imports are equally warm; the
    traced arm carries a trace context, records spans to a scratch
    directory, and feeds a host latency histogram — the full per-cell
    telemetry path.
    """
    from repro.par.cells import execute_cell
    from repro.telemetry import hostmetrics
    from repro.telemetry.context import new_context
    from repro.telemetry.spans import read_spans, scoped

    warmup = execute_cell(task, None)

    bare_wall = None
    bare_result = None
    with scoped(None):
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            bare_result = execute_cell(task, None)
            wall = time.perf_counter() - start
            if bare_wall is None or wall < bare_wall:
                bare_wall = wall

    scratch = tempfile.mkdtemp(prefix="repro-telemetry-overhead-")
    traced_wall = None
    traced_result = None
    spans_recorded = 0
    try:
        ctx = new_context()
        traced_task = replace(task, trace=ctx.to_dict())
        with scoped(scratch, service="bench"):
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                traced_result = execute_cell(traced_task, None)
                wall = time.perf_counter() - start
                hostmetrics.observe_seconds("host.bench.cell_wall_s",
                                            wall)
                if traced_wall is None or wall < traced_wall:
                    traced_wall = wall
            spans_recorded = len(read_spans(scratch))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    def _canonical(result):
        if result is None or not result.ok:
            return ("failed", getattr(result, "error", None))
        value = result.value
        # Bench cell values are structured results; compare their
        # simulated quantities the way the bench digest does.
        fields = ("verdict", "native_cycles", "mvee_cycles",
                  "sync_ops", "syscalls", "stall_cycles")
        if all(hasattr(value, f) for f in fields):
            return tuple(getattr(value, f) for f in fields)
        return repr(value)

    digest_identical = (
        _canonical(bare_result) == _canonical(traced_result)
        == _canonical(warmup))
    overhead = None
    if bare_wall and traced_wall is not None:
        overhead = (traced_wall - bare_wall) / bare_wall
    return {
        "repeats": max(1, repeats),
        "cell": {"sweep_id": task.sweep_id, "index": task.index,
                 "seed": task.seed},
        "bare_wall_s": bare_wall,
        "traced_wall_s": traced_wall,
        "overhead_frac": overhead,
        "spans_recorded": spans_recorded,
        "digest_identical": digest_identical,
    }
