"""Prometheus text exposition over a :class:`MetricsRegistry`.

The renderer maps the registry's three metric kinds onto the standard
text format (version 0.0.4):

* ``Counter`` -> a ``counter`` family named ``<name>_total``;
* ``Gauge``   -> two ``gauge`` families, ``<name>`` and ``<name>_max``
  (the registry tracks a high-water mark natively);
* ``Histogram`` -> a ``histogram`` family with *cumulative*
  ``_bucket{le="..."}`` series (the registry stores per-interval
  counts; the renderer accumulates), a ``+Inf`` bucket, ``_sum``, and
  ``_count``.

Metric names are sanitised (``host.pool.spawned`` ->
``repro_host_pool_spawned_total``).  Output is deterministic: families
in sorted order, buckets in bound order — a scrape of a quiesced
daemon is byte-stable.

:func:`parse_prometheus` is the matching validator used by the tests
and the CI ``telemetry-smoke`` job: it checks the syntax of every line
(TYPE declarations, sample names, label quoting, float values) and the
histogram invariants (monotone buckets, ``+Inf == _count``), raising
:class:`ValueError` with the offending line on any violation.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "parse_prometheus", "prom_name"]

#: Prefix for every exposed family.
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def prom_name(name: str) -> str:
    """Registry name -> exposition family name (prefixed, sanitised)."""
    cleaned = "".join(ch if (ch.isalnum() or ch == "_") else "_"
                      for ch in name)
    return PREFIX + cleaned.strip("_")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (deterministic)."""
    lines: list[str] = []
    for name, metric in registry.items():
        base = prom_name(name)
        if isinstance(metric, Counter):
            family = base if base.endswith("_total") else base + "_total"
            lines.append(f"# HELP {family} host counter {name}")
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {base} host gauge {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_fmt(metric.value)}")
            lines.append(f"# HELP {base}_max high-water mark of {name}")
            lines.append(f"# TYPE {base}_max gauge")
            lines.append(f"{base}_max {_fmt(metric.max)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {base} host histogram {name}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for i, bound in enumerate(metric.bounds):
                cumulative += metric.counts[i]
                lines.append(f'{base}_bucket{{le="{_fmt(bound)}"}} '
                             f"{cumulative}")
            lines.append(f'{base}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{base}_sum {_fmt(metric.total)}")
            lines.append(f"{base}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_value(text: str, line_no: int):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"line {line_no}: {text!r} is not a valid sample value"
        ) from None


def parse_prometheus(text: str) -> dict:
    """Parse (and validate) a text exposition.

    Returns ``{family: {"type": str, "samples": [(name, labels, value),
    ...]}}`` where histogram sub-series (``_bucket``/``_sum``/
    ``_count``) fold into their family.  Raises :class:`ValueError`
    naming the first malformed line or broken histogram invariant.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed TYPE line")
            family, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(
                    f"line {line_no}: unknown metric type {kind!r}")
            if family in types:
                raise ValueError(
                    f"line {line_no}: duplicate TYPE for {family}")
            types[family] = kind
            families.setdefault(family,
                                {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample: "
                             f"{line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                part = part.strip()
                if not part:
                    continue
                label = _LABEL.match(part)
                if label is None:
                    raise ValueError(
                        f"line {line_no}: malformed label {part!r}")
                labels[label.group("key")] = label.group("val")
        value = _parse_value(match.group("value"), line_no)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) \
                else None
            if stripped and types.get(stripped) == "histogram":
                family = stripped
                break
        if family not in families:
            # Samples without a preceding TYPE are legal ("untyped")
            # but our renderer always declares; flag the drift.
            raise ValueError(
                f"line {line_no}: sample {name!r} has no TYPE "
                "declaration")
        families[family]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [(labels.get("le"), value)
                   for name, labels, value in data["samples"]
                   if name == family + "_bucket"]
        counts = [value for name, _, value in data["samples"]
                  if name == family + "_count"]
        if not buckets or not counts:
            raise ValueError(
                f"histogram {family} is missing _bucket or _count")
        previous = -math.inf
        for le, value in buckets:
            if le is None:
                raise ValueError(
                    f"histogram {family} has a bucket without le=")
            if value < previous:
                raise ValueError(
                    f"histogram {family} buckets are not monotone")
            previous = value
        if buckets[-1][0] != "+Inf":
            raise ValueError(
                f"histogram {family} lacks a +Inf bucket")
        if buckets[-1][1] != counts[0]:
            raise ValueError(
                f"histogram {family}: +Inf bucket != _count")
    return families
