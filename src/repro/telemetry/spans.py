"""Host-time span recording and the multi-process trace merger.

Every participating process (CLI, daemon, forked pool workers) appends
finished spans to its own JSONL file under the telemetry directory —
append + flush per span, so spans survive a daemon kill mid-session
(the recovery tests rely on this).  :func:`merge_host_trace` then folds
all span logs into one Chrome ``trace_event`` file in which the CLI,
the daemon, each session, and each worker process appear as separate
processes, optionally alongside the guest's simulated-cycle trace.

Spans are stamped with :func:`time.monotonic_ns` — CLOCK_MONOTONIC is
system-wide on Linux, so spans from different processes on one host
order correctly in the merged view.  The machine clock is never read.

Activation: :func:`configure` (programmatic) or the
``REPRO_TELEMETRY_DIR`` environment variable (inherited by forked
workers).  When neither is set, :func:`span` is a no-op that still
yields a usable :class:`Span`, so instrumented call sites never branch.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

from repro.telemetry.context import (
    TraceContext,
    current_context,
    new_context,
    use_context,
)

__all__ = [
    "configure",
    "scoped",
    "reset",
    "enabled",
    "telemetry_dir",
    "service_name",
    "span",
    "Span",
    "merge_host_trace",
]

#: Environment variables the recorder honours (set by ``serve start
#: --telemetry-dir`` so forked pool workers inherit the destination).
ENV_DIR = "REPRO_TELEMETRY_DIR"
ENV_SERVICE = "REPRO_TELEMETRY_SERVICE"

#: Synthetic pid offset for guest trace events in a merged file, so
#: guest variants never collide with host track pids.
GUEST_PID_BASE = 1000

_lock = threading.Lock()
_config: dict = {"dir": None, "service": None, "explicit": False}
_handle = None
_handle_key: tuple | None = None


def configure(directory: str | None, service: str | None = None) -> None:
    """Point the recorder at ``directory`` (``None`` disables).

    ``service`` names this process's track in the merged trace
    ("cli", "daemon", "worker", ...); spans may override it per call.
    """
    global _handle, _handle_key
    with _lock:
        _config["dir"] = directory
        _config["service"] = service or _config["service"] or "host"
        _config["explicit"] = True
        if _handle is not None:
            try:
                _handle.close()
            except OSError:
                pass
        _handle = None
        _handle_key = None


def reset() -> None:
    """Forget all configuration (tests)."""
    global _handle, _handle_key
    with _lock:
        _config["dir"] = None
        _config["service"] = None
        _config["explicit"] = False
        if _handle is not None:
            try:
                _handle.close()
            except OSError:
                pass
        _handle = None
        _handle_key = None


@contextmanager
def scoped(directory: str | None, service: str | None = None):
    """Temporarily configure the recorder, restoring the previous
    configuration (and handle) on exit — the overhead self-measurement
    and the tests both need on/off arms inside one process."""
    saved = dict(_config)
    configure(directory, service)
    try:
        yield
    finally:
        global _handle, _handle_key
        with _lock:
            _config.clear()
            _config.update(saved)
            if _handle is not None:
                try:
                    _handle.close()
                except OSError:
                    pass
            _handle = None
            _handle_key = None


def _effective_dir() -> str | None:
    if _config["explicit"]:
        return _config["dir"]
    return os.environ.get(ENV_DIR) or None


def enabled() -> bool:
    return _effective_dir() is not None


def telemetry_dir() -> str | None:
    return _effective_dir()


def service_name() -> str:
    if _config["explicit"] and _config["service"]:
        return _config["service"]
    return os.environ.get(ENV_SERVICE) or _config["service"] or "host"


def _safe(name: str) -> str:
    return "".join(ch if (ch.isalnum() or ch in "-_") else "_"
                   for ch in name)


def _write(record: dict, service: str) -> None:
    """Append one span line to this process's log for ``service``.

    The handle is keyed by (pid, service): a forked worker inheriting
    the parent's open handle reopens its own file on first write, and a
    daemon that records both "daemon" and "session" spans keeps one
    file per service.
    """
    global _handle, _handle_key
    directory = _effective_dir()
    if directory is None:
        return
    key = (os.getpid(), service, directory)
    line = json.dumps(record, sort_keys=True)
    with _lock:
        if _handle is None or _handle_key != key:
            if _handle is not None:
                try:
                    _handle.close()
                except OSError:
                    pass
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory,
                f"spans-{_safe(service)}-{os.getpid()}.jsonl")
            _handle = open(path, "a")
            _handle_key = key
        try:
            _handle.write(line + "\n")
            _handle.flush()
        except OSError:
            pass


class Span:
    """A live span: mutate ``attrs`` inside the ``with`` block to
    annotate it (e.g. ``s.attrs["resumed"] = True``)."""

    __slots__ = ("name", "ctx", "service", "track", "attrs", "start_ns")

    def __init__(self, name: str, ctx: TraceContext, service: str,
                 track: str | None, attrs: dict):
        self.name = name
        self.ctx = ctx
        self.service = service
        self.track = track
        self.attrs = attrs
        self.start_ns = 0


@contextmanager
def span(name: str, ctx: TraceContext | None = None,
         service: str | None = None, track: str | None = None,
         **attrs):
    """Record one host-time span around the block.

    The span's context is ``ctx`` (verbatim — pass ``parent.child()``
    to descend) or a child of the thread's current context, or a fresh
    root; it is installed as the current context for the duration so
    nested spans and outgoing requests parent correctly.  Disabled
    telemetry still yields a :class:`Span` (with a context) but writes
    nothing.
    """
    if ctx is None:
        parent = current_context()
        ctx = parent.child() if parent is not None else new_context()
    svc = service or service_name()
    live = Span(name, ctx, svc, track, dict(attrs))
    if not enabled():
        with use_context(ctx):
            yield live
        return
    live.start_ns = time.monotonic_ns()
    try:
        with use_context(ctx):
            yield live
    finally:
        end_ns = time.monotonic_ns()
        record = {
            "trace": ctx.trace_id,
            "span": ctx.span_id,
            "parent": ctx.parent_id,
            "name": live.name,
            "service": svc,
            "track": live.track or f"{svc} {os.getpid()}",
            "pid": os.getpid(),
            "tid": threading.get_ident() % 100000,
            "start_ns": live.start_ns,
            "dur_ns": end_ns - live.start_ns,
        }
        if live.attrs:
            record["attrs"] = live.attrs
        _write(record, svc)


# -- merging ----------------------------------------------------------------


def read_spans(directory: str) -> list[dict]:
    """All span records under ``directory``, torn-tail tolerant,
    ordered by host start time."""
    from repro.logio import read_jsonl

    spans: list[dict] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return spans
    for name in names:
        if not (name.startswith("spans-") and name.endswith(".jsonl")):
            continue
        result = read_jsonl(os.path.join(directory, name))
        for record in result.records:
            if isinstance(record, dict) and "start_ns" in record:
                spans.append(record)
    spans.sort(key=lambda r: (r.get("start_ns", 0),
                              r.get("span", "")))
    return spans


def _load_guest_events(path: str) -> list[dict]:
    with open(path) as handle:
        data = json.load(handle)
    events = data.get("traceEvents", data) if isinstance(data, dict) \
        else data
    if not isinstance(events, list):
        raise ValueError(f"{path!r} is not a Chrome trace file")
    shifted = []
    for event in events:
        if not isinstance(event, dict):
            continue
        event = dict(event)
        event["pid"] = GUEST_PID_BASE + int(event.get("pid", 0) or 0)
        if (event.get("ph") == "M"
                and event.get("name") == "process_name"):
            args = dict(event.get("args") or {})
            args["name"] = f"guest: {args.get('name', 'variant')}"
            event["args"] = args
        shifted.append(event)
    return shifted


def merge_host_trace(directory: str, out_path: str,
                     guest_trace: str | None = None) -> dict:
    """Merge every span log under ``directory`` into one Chrome
    ``trace_event`` file at ``out_path``.

    Each distinct span *track* ("cli", "daemon", "session <id>",
    "worker <pid>") becomes its own process in the Chrome view, with
    host timestamps rebased so the earliest span starts at t=0.  With
    ``guest_trace``, the guest's simulated-cycle events ride along
    under pid >= :data:`GUEST_PID_BASE` (their timeline is simulated
    microseconds — a different clock, kept for side-by-side reading).

    Returns ``{"spans", "tracks", "events", "out"}``.
    """
    spans = read_spans(directory)
    tracks: dict[str, int] = {}
    for record in spans:
        track = record.get("track") or "host"
        if track not in tracks:
            tracks[track] = len(tracks) + 1
    base_ns = min((r["start_ns"] for r in spans), default=0)
    events: list[dict] = []
    for track, pid in tracks.items():
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": track}})
    for record in spans:
        pid = tracks[record.get("track") or "host"]
        args = {"trace": record.get("trace"),
                "span": record.get("span"),
                "parent": record.get("parent"),
                "service": record.get("service")}
        args.update(record.get("attrs") or {})
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": record.get("tid", 0),
            "name": record.get("name", "?"),
            "ts": (record["start_ns"] - base_ns) / 1000.0,
            "dur": max(record.get("dur_ns", 0) / 1000.0, 0.001),
            "args": args,
        })
    if guest_trace is not None:
        events.extend(_load_guest_events(guest_trace))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(out_path, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return {"spans": len(spans), "tracks": len(tracks),
            "events": len(events), "out": out_path}
