"""``repro top`` — a refreshing terminal view of a live serve daemon.

One poll cycle issues two requests over a single client connection:
``status`` (session table, executor, uptime) and the id-less
``metrics`` op (host Prometheus exposition).  The exposition is run
through :func:`~repro.telemetry.prometheus.parse_prometheus` — the
live view doubles as a continuous validator of the scrape surface —
and a handful of hot families are folded into the header lines.

The view is pure text: :func:`render_top` maps the two response dicts
to a list of lines (what the tests pin), and :func:`run_top` owns the
poll loop, the ANSI clear, and the flag surface (``--interval``,
``--iterations``/``--once``).  No curses, no dependencies — it runs
anywhere the CLI runs, including CI.
"""

from __future__ import annotations

import sys
import time

from repro.telemetry.prometheus import parse_prometheus, prom_name

__all__ = ["render_top", "run_top"]

#: Clear screen + home cursor; only emitted on a tty.
_ANSI_CLEAR = "\x1b[2J\x1b[H"

#: Counter families surfaced in the pool/steal header line
#: (registry name -> short label).
_POOL_COUNTERS = (
    ("host.pool.spawned", "spawned"),
    ("host.pool.respawns", "respawns"),
    ("host.pool.stall_kills", "stall-kills"),
    ("host.pool.reaped", "reaped"),
    ("host.steal.steals", "steals"),
    ("host.steal.cells_stolen", "cells-stolen"),
)

_TRANSPORT_COUNTERS = (
    ("host.transport.inline_results", "inline"),
    ("host.transport.shm_results", "shm"),
)


def _family_value(families: dict, registry_name: str,
                  kind: str = "counter") -> float | None:
    """One scalar out of a parsed exposition, or None when absent."""
    base = prom_name(registry_name)
    family = base + "_total" if kind == "counter" else base
    data = families.get(family)
    if not data:
        return None
    for name, _labels, value in data["samples"]:
        if name == family:
            return value
    return None


def _counter_line(families: dict, pairs, title: str) -> str:
    parts = []
    for registry_name, label in pairs:
        value = _family_value(families, registry_name)
        if value is not None:
            parts.append(f"{label} {int(value)}")
    return f"{title:<10} " + ("  ".join(parts) if parts else "(no data)")


def _ops_line(families: dict) -> str:
    ops = _family_value(families, "host.serve.ops")
    errors = _family_value(families, "host.serve.op_errors")
    latency = families.get(prom_name("host.serve.op_latency_s"))
    parts = []
    if ops is not None:
        parts.append(f"ops {int(ops)}")
    if errors:
        parts.append(f"errors {int(errors)}")
    if latency is not None:
        total = count = 0.0
        for name, _labels, value in latency["samples"]:
            if name.endswith("_sum"):
                total = value
            elif name.endswith("_count"):
                count = value
        if count:
            parts.append(f"mean latency {total / count * 1000:.2f}ms")
    return "ops        " + ("  ".join(parts) if parts else "(no data)")


def render_top(status: dict, metrics: dict) -> list[str]:
    """The view as a list of lines, from one ``status`` response and
    one host ``metrics`` response.  Both dicts are treated as
    advisory: missing keys shorten the view, they never crash it."""
    lines: list[str] = []
    uptime = status.get("uptime_s")
    lines.append(
        "repro top — serve daemon"
        + (f"  up {uptime:.0f}s" if isinstance(uptime, (int, float))
           else ""))
    lines.append(
        f"sessions   active {status.get('active', '?')}"
        f"/{status.get('max_sessions', '?')}"
        f"  peak {status.get('peak_active', '?')}"
        f"  created {status.get('created_total', '?')}"
        f"  rejected {status.get('rejected_total', '?')}")
    executor = status.get("executor") or {}
    if executor:
        lines.append(
            f"executor   env {executor.get('env', '?')}"
            f"  jobs {executor.get('jobs', '?')}"
            f"  in-flight {executor.get('in_flight', '?')}"
            f"  queued {executor.get('queued', '?')}"
            f"  done {executor.get('completed', '?')}"
            f"/{executor.get('submitted', '?')}")
    exposition = metrics.get("exposition")
    if exposition:
        families = parse_prometheus(exposition)
        lines.append(_counter_line(families, _POOL_COUNTERS, "pool"))
        lines.append(_counter_line(families, _TRANSPORT_COUNTERS,
                                   "transport"))
        lines.append(_ops_line(families))
    rows = status.get("sessions_detail") or []
    if rows:
        lines.append("")
        lines.append(f"{'ID':<8} {'STATE':<12} {'WORKLOAD':<24} "
                     f"{'STEPS':>6}  VERDICT")
        for row in rows:
            verdict = row.get("verdict")
            lines.append(
                f"{str(row.get('id', '?')):<8} "
                f"{str(row.get('state', '?')):<12} "
                f"{str(row.get('workload', '?')):<24} "
                f"{str(row.get('steps', '?')):>6}  "
                f"{'-' if verdict is None else verdict}")
    else:
        lines.append("")
        lines.append("(no sessions)")
    return lines


def run_top(host: str = "127.0.0.1", port: int = 7333,
            interval_s: float = 2.0, iterations: int | None = None,
            out=None) -> int:
    """Poll status + host metrics and redraw until interrupted.

    ``iterations`` bounds the loop (``1`` is the ``--once`` snapshot
    CI takes); ``None`` runs until Ctrl-C.  Returns a process exit
    code (0, or 1 when the daemon is unreachable on the first poll).
    """
    from repro.errors import DaemonUnavailable
    from repro.serve.client import ServeClient

    out = sys.stdout if out is None else out
    drawn = 0
    while iterations is None or drawn < iterations:
        try:
            with ServeClient(host, port) as client:
                status = client.status()
                metrics = client.host_metrics()
        except DaemonUnavailable as exc:
            print(f"repro top: {exc}", file=out)
            return 1 if drawn == 0 else 0
        if out.isatty():
            out.write(_ANSI_CLEAR)
        for line in render_top(status, metrics):
            print(line, file=out)
        out.flush()
        drawn += 1
        if iterations is not None and drawn >= iterations:
            break
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0
