"""Workloads: PARSEC/SPLASH-like benchmarks, nginx, and attack programs.

The paper evaluates on PARSEC 2.1 and SPLASH-2x with four worker threads
(Table 2 lists each benchmark's native run time, syscall rate and sync-op
rate) plus an nginx 1.8 use case.  We cannot run the original suites on a
simulated kernel, so each benchmark is regenerated as a *synthetic twin*:
a guest program with the same thread topology (data-parallel, pipelined,
or barrier-phased), the same syscall and sync-op **rates**, and a
contention profile matching the original's locking structure.  The twin
exercises exactly the code paths whose cost the paper measures — monitor
interposition, sync-buffer traffic, replay stalls — which is what makes
the slowdown *shapes* transfer.
"""

from repro.workloads.philosophers import DiningPhilosophers
from repro.workloads.spec import (
    ALL_SPECS,
    PARSEC_SPECS,
    SPLASH_SPECS,
    WorkloadSpec,
    spec_by_name,
)
from repro.workloads.synthetic import SyntheticWorkload, make_benchmark

__all__ = [
    "DiningPhilosophers",
    "WorkloadSpec",
    "PARSEC_SPECS",
    "SPLASH_SPECS",
    "ALL_SPECS",
    "spec_by_name",
    "SyntheticWorkload",
    "make_benchmark",
]
