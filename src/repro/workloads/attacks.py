"""Attack demonstrations: exploit detection and covert channels.

Three artifacts from the paper's security analysis:

* :func:`exploit_payload` — the CVE-2013-2028-style request for the
  vulnerable nginx build, "dynamically tailored to a specific running
  victim variant" (its diversified code layout).  Against a single
  (native) server the exploit reaches ``execve``; under an MVEE with
  ASLR + DCL the same payload faults in every other variant and the
  monitor kills the set before any shell spawns.

* :class:`TimingCovertChannel` — the Section 5.4 PoC abusing
  *replicated* ``gettimeofday`` results.  The master encodes a secret
  (its variant-private ASLR bits) in the time deltas between calls; all
  variants receive the master's timestamps, so every variant can decode
  the master's secret and emit it *identically* — no divergence, and the
  leak passes the monitor.

* :class:`TrylockCovertChannel` — the second PoC abusing the replication
  of synchronization primitives: a sender thread holds a mutex for a
  data-dependent time; a receiver thread's ``pthread_mutex_trylock``
  outcome is a sync-op result, which the agents faithfully replicate —
  so the master's secret-dependent success/failure pattern reappears in
  every slave.
"""

from __future__ import annotations

from repro.guest.program import GuestContext, GuestProgram
from repro.guest.sync import Barrier, Mutex
from repro.kernel.vmem import LayoutBases


def exploit_payload(target_layout: LayoutBases) -> bytes:
    """Craft the attack request against a variant with ``target_layout``.

    The payload carries the absolute address of a "gadget" inside the
    target's code region — what a real attacker derives from an info
    leak against the victim.
    """
    gadget = target_layout.code_base + 0x1234
    return f"EXPLOIT {gadget:#x} chunked-overflow".encode()


#: Number of secret bits transmitted by the covert-channel PoCs.
SECRET_BITS = 8

#: Delay (cycles) encoding a 1-bit; comfortably above jitter noise.
BIT_DELAY_CYCLES = 200_000.0


def _aslr_secret(ctx: GuestContext) -> int:
    """A variant-private value: page bits of a static's address."""
    return (ctx.static_addr("beacon") >> 12) & 0xFF


class TimingCovertChannel(GuestProgram):
    """Replicated-gettimeofday covert channel — the full §5.4 exchange.

    Every variant measures the delta between two ``gettimeofday`` calls
    around a possibly-delayed computation.  The deltas are coupled
    across variants (slaves receive the master's replicated timestamps;
    the master's second call waits at the lockstep rendezvous), so a
    data-dependent delay in *any* variant is observable in *all*.

    As the paper describes, the variants "probabilistically decide
    whether a variant is the master or slave by having each variant hash
    a pointer value, which will differ across the variants" — here, the
    parity of the variant-private ASLR bits picks which send slots a
    variant uses.  After ``2 * SECRET_BITS`` slots, *every* variant holds
    the randomized secrets of *both* roles and can print them without
    causing divergence (all variants computed identical values).
    """

    name = "timing_covert_channel"
    static_vars = ("beacon",)

    def __init__(self, clock: str = "gettimeofday"):
        """``clock`` selects the replicated time source: the
        ``gettimeofday`` syscall or the ``rdtsc`` instruction — the paper
        names both as replicated, channel-forming values."""
        if clock not in ("gettimeofday", "rdtsc"):
            raise ValueError(f"unsupported clock {clock!r}")
        self.clock = clock

    def _read_clock(self, ctx: GuestContext):
        if self.clock == "rdtsc":
            ticks = yield from ctx.syscall("rdtsc")
            return ticks / 1_000.0  # cycles -> microsecond-ish units
        seconds, microseconds = yield from ctx.gettimeofday()
        return seconds * 1_000_000 + microseconds

    def main(self, ctx: GuestContext):
        secret = _aslr_secret(ctx)
        my_role = secret & 1  # the probabilistic self-awareness hash
        streams = {0: 0, 1: 0}
        for slot in range(2 * SECRET_BITS):
            sending_role = 1 if slot < SECRET_BITS else 0
            bit_index = slot % SECRET_BITS
            before = yield from self._read_clock(ctx)
            if my_role == sending_role and (secret >> bit_index) & 1:
                yield from ctx.compute(BIT_DELAY_CYCLES)
            else:
                yield from ctx.compute(1_000.0)
            after = yield from self._read_clock(ctx)
            delta_us = after - before
            if delta_us > BIT_DELAY_CYCLES / 1_000.0 / 2.0:
                streams[sending_role] |= 1 << bit_index
        # Identical in every variant: both roles' randomized bits leave
        # the system through ordinary, divergence-free output.
        yield from ctx.printf(
            f"leak_role1={streams[1]:#04x} leak_role0={streams[0]:#04x}\n")
        return {"my_secret": secret, "my_role": my_role,
                "streams": dict(streams)}


class TrylockCovertChannel(GuestProgram):
    """Mutex-trylock covert channel (two threads, Section 5.4).

    Thread 1 (sender) acquires the mutex and holds it for a
    secret-dependent time; thread 2 (receiver) attempts a trylock at a
    fixed offset into each round.  The trylock's CAS result is replayed
    by the synchronization agents, so slaves observe the master's
    pattern.  A barrier separates rounds.
    """

    name = "trylock_covert_channel"
    static_vars = ("beacon", "mutex", "bar_count", "bar_gen")

    def main(self, ctx: GuestContext):
        mutex = Mutex(ctx.static_addr("mutex"))
        barrier = Barrier(ctx.static_addr("bar_count"),
                          ctx.static_addr("bar_gen"), parties=2)
        secret = _aslr_secret(ctx)
        sender = yield from ctx.spawn(self.sender, mutex, barrier, secret)
        receiver = yield from ctx.spawn(self.receiver, mutex, barrier)
        yield from ctx.join(sender)
        decoded = yield from ctx.join(receiver)
        yield from ctx.printf(f"leaked={decoded:#04x}\n")
        return {"my_secret": secret, "decoded": decoded}

    def sender(self, ctx: GuestContext, mutex, barrier, secret):
        for bit_index in range(SECRET_BITS):
            yield from mutex.acquire(ctx)
            yield from barrier.wait(ctx)   # round start: lock is held
            if (secret >> bit_index) & 1:
                yield from ctx.compute(BIT_DELAY_CYCLES)  # hold long
            yield from mutex.release(ctx)
            yield from barrier.wait(ctx)   # round end
        return 0

    def receiver(self, ctx: GuestContext, mutex, barrier):
        decoded = 0
        for bit_index in range(SECRET_BITS):
            yield from barrier.wait(ctx)   # round start: sender holds
            yield from ctx.compute(BIT_DELAY_CYCLES / 4.0)
            got_it = yield from mutex.try_acquire(ctx)
            if got_it:
                yield from mutex.release(ctx)
            else:
                decoded |= 1 << bit_index  # long hold = bit set
            yield from barrier.wait(ctx)   # round end
        return decoded
