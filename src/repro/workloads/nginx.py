"""The nginx use case (Section 5.5): a threaded web server with custom
synchronization primitives, a wrk-style load generator, and the
CVE-2013-2028-style attack.

nginx 1.8 introduced thread pools; part of its inter-thread
synchronization uses pthread primitives, but "the nginx developers have
also built some synchronization primitives of their own, using inline
assembly code and compiler intrinsics".  The paper shows that leaving
those custom primitives un-instrumented makes the server diverge as soon
as traffic flows, and that fifteen minutes with the analysis/refactoring
tools fixes it (51 sync ops identified).

Our server mirrors that structure:

* the **connection queue** between the acceptor (main) and the worker
  pool uses *custom* primitives — an ad-hoc spinlock and ticket counters
  with ``nginx.*`` site labels (matching
  :data:`repro.analysis.corpus.NGINX_SITES`);
* per-request statistics use a custom atomic counter;
* the worker pool's idle handshake uses the stock (``libpthread.*``)
  primitives.

Instrumenting only the pthread sites reproduces the paper's divergence;
adding the ``nginx.*`` sites (the analysis pipeline's output) makes the
MVEE run cleanly even under ASLR + DCL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.program import GuestContext, GuestProgram
from repro.kernel.net import client_wait_key
from repro.kernel.vtime import seconds_to_cycles

#: Poison value distributing shutdown to pool workers.
SHUTDOWN = -1

#: Default served page size (the paper serves a static 4 KiB page).
PAGE_SIZE = 4096


class NginxCustomLock:
    """nginx's ad-hoc spinlock (inline-asm in the original)."""

    SITE_LOCK = "nginx.spinlock.lock.cmpxchg"
    SITE_UNLOCK = "nginx.spinlock.unlock.store"

    def __init__(self, addr: int):
        self.addr = addr

    def acquire(self, ctx: GuestContext):
        while True:
            old = yield from ctx.cas(self.addr, 0, 1, site=self.SITE_LOCK)
            if old == 0:
                return
            yield from ctx.sched_yield()

    def release(self, ctx: GuestContext):
        yield from ctx.atomic_store(self.addr, 0, site=self.SITE_UNLOCK)


class NginxConnQueue:
    """Custom MPMC ticket queue for accepted connections.

    Head/tail tickets are claimed with LOCK XADD; slots are plain
    (type iii) loads/stores guarded by the tickets — the kind of ad-hoc
    construction the two-stage analysis is built to find.
    """

    def __init__(self, ctx: GuestContext, capacity: int = 64):
        self.capacity = capacity
        self.lock = NginxCustomLock(ctx.alloc_static("ngx.q.lock"))
        self.head_addr = ctx.alloc_static("ngx.q.head")
        self.tail_addr = ctx.alloc_static("ngx.q.tail")
        self.slots = [ctx.alloc_static(f"ngx.q.slot{i}")
                      for i in range(capacity)]

    def push(self, ctx: GuestContext, value: int):
        while True:
            yield from self.lock.acquire(ctx)
            head = yield from ctx.atomic_load(self.head_addr,
                                              site="nginx.queue.slot.load")
            tail = yield from ctx.fetch_add(self.tail_addr, 0,
                                            site="nginx.queue.tail.xadd")
            if tail - head < self.capacity:
                break
            yield from self.lock.release(ctx)
            yield from ctx.sched_yield()
        yield from ctx.fetch_add(self.tail_addr, 1,
                                 site="nginx.queue.tail.xadd")
        yield from ctx.atomic_store(self.slots[tail % self.capacity],
                                    value + 1,  # +1: 0 means empty
                                    site="nginx.queue.slot.store")
        yield from self.lock.release(ctx)
        # Idle pool workers sleep on the tail counter (ngx thread pools
        # block on a condvar; the futex is that blocking path).
        yield from ctx.futex_wake(self.tail_addr, 1)

    def pop(self, ctx: GuestContext):
        while True:
            yield from self.lock.acquire(ctx)
            head = yield from ctx.atomic_load(self.head_addr,
                                              site="nginx.queue.slot.load")
            tail = yield from ctx.fetch_add(self.tail_addr, 0,
                                            site="nginx.queue.tail.xadd")
            if head < tail:
                slot = self.slots[head % self.capacity]
                value = yield from ctx.atomic_load(
                    slot, site="nginx.queue.slot.load")
                yield from ctx.fetch_add(self.head_addr, 1,
                                         site="nginx.queue.head.xadd")
                yield from self.lock.release(ctx)
                return value - 1
            yield from self.lock.release(ctx)
            yield from ctx.futex_wait(self.tail_addr, tail)


@dataclass
class NginxConfig:
    """Server configuration (defaults follow Section 5.5's setup)."""

    port: int = 80
    pool_threads: int = 32
    page_size: int = PAGE_SIZE
    #: Total connections the server will accept before shutting down
    #: (the traffic driver opens exactly this many).
    connections: int = 10
    requests_per_connection: int = 4
    #: Cycles of request-processing work per request.
    work_cycles: float = 30_000.0
    #: Vulnerability toggle: parse EXPLOIT requests (CVE-2013-2028-like).
    vulnerable: bool = False


class NginxServer(GuestProgram):
    """Threaded web server with an acceptor and a worker pool."""

    name = "nginx"

    def __init__(self, config: NginxConfig | None = None):
        self.config = config or NginxConfig()

    def main(self, ctx: GuestContext):
        config = self.config
        queue = NginxConnQueue(ctx)
        stats_addr = ctx.alloc_static("ngx.stats.requests")
        page = ctx.vm.kernel.disk.create("/var/www/index.html")
        page.write_at(0, b"<html>" + b"x" * (config.page_size - 13)
                      + b"</html>")
        sock = yield from ctx.syscall("socket")
        yield from ctx.syscall("bind", sock, config.port)
        yield from ctx.syscall("listen", sock)
        tids = yield from ctx.spawn_all(
            self.pool_worker,
            [(queue, stats_addr, i) for i in range(config.pool_threads)])
        for _ in range(config.connections):
            conn_fd = yield from ctx.syscall("accept", sock)
            yield from queue.push(ctx, conn_fd)
        for _ in range(config.pool_threads):
            yield from queue.push(ctx, SHUTDOWN)
        yield from ctx.join_all(tids)
        served = ctx.mem_load(stats_addr)
        yield from ctx.printf(f"nginx: served {served} requests\n")
        return served

    def pool_worker(self, ctx: GuestContext, queue, stats_addr, index):
        config = self.config
        handled = 0
        while True:
            conn_fd = yield from queue.pop(ctx)
            if conn_fd == SHUTDOWN:
                break
            served = yield from self.handle_connection(ctx, conn_fd,
                                                       stats_addr)
            handled += served
        return handled

    def handle_connection(self, ctx: GuestContext, conn_fd: int,
                          stats_addr: int):
        config = self.config
        served = 0
        while True:
            request = yield from ctx.syscall("recv", conn_fd, 4096)
            if not request:
                break
            if (config.vulnerable
                    and request.startswith(b"EXPLOIT ")):
                yield from self._exploited(ctx, request)
            yield from ctx.compute(config.work_cycles)
            fd = yield from ctx.open("/var/www/index.html")
            body = yield from ctx.read(fd, config.page_size)
            yield from ctx.close(fd)
            yield from ctx.syscall(
                "send", conn_fd,
                b"HTTP/1.1 200 OK\r\n\r\n" + body)
            yield from ctx.fetch_add(stats_addr, 1,
                                     site="nginx.stats.requests.xadd")
            served += 1
            if request.rstrip().endswith(b"close"):
                break
        yield from ctx.close(conn_fd)
        return served

    def _exploited(self, ctx: GuestContext, request: bytes):
        """CVE-2013-2028 analogue: a chunked-transfer overflow lets the
        attacker redirect control flow to an absolute address embedded in
        the request.  The address is only meaningful in the variant whose
        (diversified) code layout the attacker targeted; in every other
        variant the 'jump' lands in unmapped memory and faults."""
        target = int(request.split()[1], 16)
        region = ctx.vm.kernel.addr_space.region_at(target)
        if region is not None and region.tag == "code":
            # Control flow reaches the ROP chain: spawn a shell.
            yield from ctx.syscall("execve", "/bin/sh",
                                   ("-c", "id"))
        else:
            # The redirected 'call' dereferences unmapped memory.
            ctx.mem_load(target)


@dataclass
class TrafficStats:
    """Filled in by the traffic driver as responses arrive."""

    requests_sent: int = 0
    responses: int = 0
    bytes_received: int = 0
    first_send_cycles: float = 0.0
    last_response_cycles: float = 0.0

    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        window = self.last_response_cycles - self.first_send_cycles
        if window <= 0:
            return 0.0
        return self.responses / (window / seconds_to_cycles(1.0))


def make_traffic(config: NginxConfig, latency_s: float,
                 stats: TrafficStats, exploit_payload: bytes | None = None,
                 start_s: float = 0.0):
    """Build a wrk-style traffic driver.

    ``latency_s`` is the one-way network delay: ~100 µs models the
    paper's gigabit client link, 0 models loopback.  Each of the
    configured connections sends ``requests_per_connection`` GETs
    back-to-back (a new request as each response arrives).  If
    ``exploit_payload`` is given, the final connection sends it instead
    of a normal request.
    """

    latency = seconds_to_cycles(latency_s)

    def driver(machine, network):
        def open_connection(index):
            def connect(machine_):
                try:
                    conn = network.client_connect(config.port)
                except Exception:
                    # Server not listening yet (still bootstrapping):
                    # retry shortly, like a real client's SYN retry.
                    machine_.call_at(machine_.now + 50_000.0, connect)
                    return
                send_request(conn, index, 0)
            machine.call_at(machine.now + latency * index, connect)

        def send_request(conn, index, sent):
            is_exploit = (exploit_payload is not None
                          and index == config.connections - 1)
            if is_exploit:
                payload = exploit_payload
            elif sent == config.requests_per_connection - 1:
                payload = b"GET /index.html close"
            else:
                payload = b"GET /index.html"

            def deliver(machine_):
                network.client_send(conn, payload)
                stats.requests_sent += 1
                if stats.first_send_cycles == 0.0:
                    stats.first_send_cycles = machine_.now
                machine_.wait_key_external(
                    client_wait_key(conn),
                    lambda m: receive(m, conn, index, sent))
            machine.call_at(machine.now + latency, deliver)

        def receive(machine_, conn, index, sent):
            data = network.client_recv(conn)
            if data in (b"",):
                return
            if data is None or not isinstance(data, bytes):
                return
            stats.responses += 1
            stats.bytes_received += len(data)
            stats.last_response_cycles = machine_.now + latency
            if sent + 1 < config.requests_per_connection:
                send_request(conn, index, sent + 1)
            else:
                machine_.call_at(machine_.now + latency,
                                 lambda m: network.client_close(conn))

        for index in range(config.connections):
            machine.call_at(seconds_to_cycles(start_s),
                            lambda m, i=index: open_connection(i))

    return driver


#: Instrumentation predicates for the two experimental conditions.
def pthread_only_sites(site: str) -> bool:
    """The 'before refactoring' condition: custom nginx primitives bare."""
    return not site.startswith("nginx.")


def all_nginx_sites(site: str) -> bool:
    """The 'after analysis' condition: everything instrumented."""
    return True
