"""Dining philosophers — the canonical guest lock-order deadlock.

Two variants of the classic table:

* ``DiningPhilosophers(trylock=False)`` — every philosopher picks up the
  left fork, then the right.  A seating barrier (an atomic counter each
  philosopher bumps after taking the left fork, then spins on) forces the
  full hold-and-wait pattern *deterministically*: no philosopher reaches
  for the right fork until every left fork is held, so the run always
  wedges into the complete ``fork_0 -> fork_1 -> ... -> fork_0`` cycle.
  Under an MVEE with an attached :class:`repro.races.DeadlockDetector`
  the run ends in a ``deadlock`` verdict at cycle formation; without one
  it burns the watchdog budget and dies as a ``WATCHDOG_TIMEOUT``
  (now tagged ``deadlock-suspected`` by the cause hint).

* ``DiningPhilosophers(trylock=True)`` — same seating gate, but the
  right fork is taken with ``pthread_mutex_trylock``; on refusal the
  philosopher puts the left fork back and retries both forks in global
  address order (lowest index first).  The total order makes a cycle
  impossible: the run completes cleanly, and the detector's report shows
  the trylock guard refusing — the dynamic evidence behind the static
  analyzer's ``refuted-by-guard`` classification
  (:func:`repro.analysis.lockorder.cross_check`).
"""

from __future__ import annotations

from repro.guest.program import GuestContext, GuestProgram
from repro.guest.sync import Mutex

#: Cycles spent "eating" once both forks are held.
EAT_CYCLES = 2_000.0


class DiningPhilosophers(GuestProgram):
    """N philosophers, N fork mutexes; see the module docstring."""

    def __init__(self, philosophers: int = 3, trylock: bool = False):
        if philosophers < 2:
            raise ValueError("need at least 2 philosophers for a cycle")
        self.philosophers = philosophers
        self.trylock = trylock
        self.name = ("dining_philosophers_trylock" if trylock
                     else "dining_philosophers")
        self.static_vars = tuple(
            f"fork{i}" for i in range(philosophers)) + ("seated", "meals")

    def main(self, ctx: GuestContext):
        forks = [Mutex(ctx.static_addr(f"fork{i}"))
                 for i in range(self.philosophers)]
        tids = []
        for i in range(self.philosophers):
            tid = yield from ctx.spawn(self.philosopher, i, forks,
                                       name=f"phil{i}")
            tids.append(tid)
        yield from ctx.join_all(tids)
        meals = ctx.mem_load(ctx.static_addr("meals"))
        yield from ctx.printf(f"meals={meals}\n")
        return {"meals": meals}

    def philosopher(self, ctx: GuestContext, index: int, forks):
        left = forks[index]
        right = forks[(index + 1) % self.philosophers]
        seated = ctx.static_addr("seated")
        yield from left.acquire(ctx)
        # Seating gate: only reach for the right fork once every
        # philosopher holds a left one — the hold-and-wait pattern is
        # complete and (in the blocking variant) the cycle guaranteed.
        yield from ctx.fetch_add(seated, 1, site="philosophers.seated.xadd")
        while True:
            count = yield from ctx.atomic_load(
                seated, site="philosophers.seated.load")
            if count >= self.philosophers:
                break
            yield from ctx.sched_yield()
        if not self.trylock:
            yield from right.acquire(ctx)       # wedges: full cycle
            yield from self._eat(ctx)
            yield from right.release(ctx)
            yield from left.release(ctx)
            return index
        got_right = yield from right.try_acquire(ctx)
        if got_right:
            yield from self._eat(ctx)
            yield from right.release(ctx)
            yield from left.release(ctx)
            return index
        # Guard refused: put the left fork back and retake both in
        # global order — the total order makes a wait-for cycle
        # impossible, so this always terminates.
        yield from left.release(ctx)
        first, second = sorted((index, (index + 1) % self.philosophers))
        yield from forks[first].acquire(ctx)
        yield from forks[second].acquire(ctx)
        yield from self._eat(ctx)
        yield from forks[second].release(ctx)
        yield from forks[first].release(ctx)
        return index

    def _eat(self, ctx: GuestContext):
        yield from ctx.compute(EAT_CYCLES)
        yield from ctx.fetch_add(ctx.static_addr("meals"), 1,
                                 site="philosophers.meals.xadd")
