"""Benchmark specifications calibrated from the paper's Table 2.

Each :class:`WorkloadSpec` records the original benchmark's measured
characteristics — native run time (seconds), system-call rate and sync-op
rate (thousands per second, Table 2) — plus structural attributes the
paper describes in the text:

* ``topology`` — ``"data_parallel"`` (worker loop), ``"pipeline"``
  (dedup/ferret/vips-style stages connected by queues; these run more
  threads than workers, which is what produces the superlinear
  degradation once total threads exceed the machine's cores, §5.1),
  ``"phases"`` (SPLASH-style barrier-separated phases), or ``"gomp"``
  (freqmine's OpenMP loop).
* ``contention`` — fraction of sync ops that target globally shared
  locks rather than per-thread ones.  This drives the TO/PO agents'
  pathologies (radiosity's task queue is the extreme case).
* ``n_locks`` — how many distinct synchronization variables exist
  (matters for wall-of-clocks hash collisions).

Because the originals run for tens of seconds and execute up to 18M sync
ops per second, the synthetic twin simulates a *slice* with the same
rates; :func:`plan_slice` picks the slice length so each configuration
stays within an event budget while preserving every rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.vtime import seconds_to_cycles


@dataclass(frozen=True)
class WorkloadSpec:
    """Calibration record for one benchmark."""

    name: str
    suite: str                    # "parsec" | "splash2x"
    native_runtime_s: float       # Table 2, seconds
    syscall_rate_k: float         # Table 2, 1000 calls/sec
    sync_rate_k: float            # Table 2, 1000 ops/sec
    topology: str = "data_parallel"
    contention: float = 0.3       # fraction of ops on shared locks
    n_locks: int = 32             # distinct sync variables
    workers: int = 4              # paper: four worker threads
    #: Pipeline stage multiplier: dedup runs 3n threads, ferret 2+4n,
    #: vips 2+n (footnote 8); encoded as (fixed, per_worker) stages.
    pipeline_threads: tuple[int, int] = (0, 0)

    @property
    def total_threads(self) -> int:
        """Threads the benchmark actually runs (excl. main)."""
        if self.topology == "pipeline":
            fixed, per_worker = self.pipeline_threads
            return fixed + per_worker * self.workers
        return self.workers


def _parsec(name, runtime, syscall_k, sync_k, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite="parsec",
                        native_runtime_s=runtime, syscall_rate_k=syscall_k,
                        sync_rate_k=sync_k, **kwargs)


def _splash(name, runtime, syscall_k, sync_k, **kwargs) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite="splash2x",
                        native_runtime_s=runtime, syscall_rate_k=syscall_k,
                        sync_rate_k=sync_k, **kwargs)


#: PARSEC 2.1 rows of Table 2 (canneal excluded: intentionally racy, and
#: fundamentally incompatible with MVEEs — §5.1).
PARSEC_SPECS = {spec.name: spec for spec in [
    _parsec("blackscholes", 80.83, 2.55, 0.00, contention=0.0, n_locks=1),
    _parsec("bodytrack", 60.06, 8.59, 202.36, contention=0.35,
            n_locks=24),
    _parsec("dedup", 18.29, 134.27, 1052.45, topology="pipeline",
            pipeline_threads=(0, 3), contention=0.55, n_locks=16),
    _parsec("facesim", 142.52, 4.14, 288.75, contention=0.25, n_locks=48),
    _parsec("ferret", 103.79, 2.29, 225.10, topology="pipeline",
            pipeline_threads=(2, 4), contention=0.40, n_locks=20),
    _parsec("fluidanimate", 93.19, 0.45, 12746.59, contention=0.30,
            n_locks=512),
    _parsec("freqmine", 168.66, 0.35, 0.24, topology="gomp",
            contention=0.2, n_locks=4),
    _parsec("raytrace", 147.54, 0.78, 88.33, contention=0.15, n_locks=16),
    _parsec("streamcluster", 136.05, 5.63, 18.78, topology="phases",
            contention=0.5, n_locks=8),
    _parsec("swaptions", 86.68, 0.01, 4585.65, contention=0.45,
            n_locks=64),
    _parsec("vips", 37.09, 15.76, 428.69, topology="pipeline",
            pipeline_threads=(2, 1), contention=0.35, n_locks=24),
    _parsec("x264", 34.73, 0.50, 15.98, contention=0.2, n_locks=12),
]}

#: SPLASH-2x rows (cholesky excluded: does not compile on the paper's
#: system even outside the MVEE — §5.1).
SPLASH_SPECS = {spec.name: spec for spec in [
    _splash("barnes", 61.15, 19.61, 5115.99, contention=0.6, n_locks=128),
    _splash("fft", 40.26, 0.01, 1.64, topology="phases", contention=0.3,
            n_locks=4),
    _splash("fmm", 42.68, 0.91, 5215.01, contention=0.35, n_locks=256),
    _splash("lu_cb", 51.16, 0.08, 0.23, topology="phases",
            contention=0.2, n_locks=4),
    _splash("lu_ncb", 73.55, 0.05, 0.16, topology="phases",
            contention=0.2, n_locks=4),
    _splash("ocean_cp", 39.39, 1.21, 5.05, topology="phases",
            contention=0.3, n_locks=8),
    _splash("ocean_ncp", 41.68, 1.08, 4.55, topology="phases",
            contention=0.3, n_locks=8),
    _splash("radiosity", 45.56, 33.42, 18252.68, contention=0.75,
            n_locks=64),
    _splash("radix", 18.22, 0.02, 0.04, topology="phases",
            contention=0.2, n_locks=4),
    _splash("raytrace.splash", 52.52, 6.63, 536.79, contention=0.45,
            n_locks=32),
    _splash("volrend", 52.02, 15.86, 1071.25, contention=0.5, n_locks=48),
    _splash("water_nsquared", 182.80, 0.88, 8.61, contention=0.25,
            n_locks=16),
    _splash("water_spatial", 59.84, 148.27, 9.63, contention=0.25,
            n_locks=16),
]}

ALL_SPECS = {**PARSEC_SPECS, **SPLASH_SPECS}


def catalog() -> list[dict]:
    """Machine-readable benchmark-twin listing.

    One entry per synthetic twin plus the §5.5 nginx service — the same
    structure behind ``repro list --json`` and the serve daemon's
    ``workloads`` op, so clients discover workloads without scraping
    stdout.  Fields are plain JSON types.
    """
    entries = []
    for name, spec in ALL_SPECS.items():
        entries.append({
            "name": name,
            "kind": "benchmark",
            "suite": spec.suite,
            "topology": spec.topology,
            "native_runtime_s": spec.native_runtime_s,
            "syscall_rate_k": spec.syscall_rate_k,
            "sync_rate_k": spec.sync_rate_k,
            "contention": spec.contention,
            "n_locks": spec.n_locks,
            "workers": spec.workers,
            "total_threads": spec.total_threads,
        })
    entries.append({
        "name": "nginx",
        "kind": "service",
        "suite": "use-case",
        "topology": "acceptor_pool",
        "description": "§5.5 threaded web server with custom sync "
                       "primitives (fully instrumented)",
    })
    return entries


def spec_by_name(name: str) -> WorkloadSpec:
    try:
        return ALL_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; choose from "
                         f"{sorted(ALL_SPECS)}") from None


@dataclass(frozen=True)
class SlicePlan:
    """Concrete event budget for one simulated slice of a benchmark."""

    duration_s: float             # simulated slice length
    sync_ops_total: int           # target sync ops across all threads
    syscalls_total: int           # target syscalls across all threads
    gap_cycles: float             # compute cycles between worker events

    @property
    def duration_cycles(self) -> float:
        return seconds_to_cycles(self.duration_s)


#: Hard bounds on simulated slice length.
MIN_SLICE_S = 0.00005
MAX_SLICE_S = 0.050

#: Cap on compute cycles between two worker events (keeps critical
#: sections, and hence spin-wait storms, bounded for near-idle specs).
MAX_GAP_CYCLES = 400_000.0


def plan_slice(spec: WorkloadSpec, scale: float = 1.0,
               max_sync_events: int = 5_000,
               max_syscalls: int = 600) -> SlicePlan:
    """Choose a slice length reproducing the spec's rates within budget.

    The sync-op budget is the binding constraint (the heavy benchmarks
    run millions of ops per second); the slice is the longest length that
    respects it, clamped to [MIN_SLICE_S, MAX_SLICE_S] and to the
    syscall budget.  ``scale`` shrinks (<1) or grows (>1) the budgets —
    tests use small scales, the figure benches the default.
    """
    sync_per_s = spec.sync_rate_k * 1000.0
    sys_per_s = spec.syscall_rate_k * 1000.0
    sync_budget = max(200, int(max_sync_events * scale))
    sys_budget = max(20, int(max_syscalls * scale))
    duration = MAX_SLICE_S
    if sync_per_s > 0:
        duration = min(duration, sync_budget / sync_per_s)
    if sys_per_s > 0:
        duration = min(duration, sys_budget / sys_per_s)
    duration = max(duration, MIN_SLICE_S)
    duration = min(duration, spec.native_runtime_s)
    sync_total = int(sync_per_s * duration)
    sys_total = max(1, int(sys_per_s * duration))
    # Worker-side event pacing: each worker runs for the whole slice and
    # spreads its share of events across it.  A floor on events keeps
    # near-idle specs (radix, lu) from degenerating into one giant
    # critical section per slice.
    events_per_worker = max(20, (sync_total + sys_total)
                            // max(spec.total_threads, 1))
    gap = seconds_to_cycles(duration) / events_per_worker
    return SlicePlan(duration_s=duration, sync_ops_total=sync_total,
                     syscalls_total=sys_total,
                     gap_cycles=min(max(gap, 50.0), MAX_GAP_CYCLES))
