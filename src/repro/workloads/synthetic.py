"""Synthetic benchmark twins generated from WorkloadSpecs.

One :class:`SyntheticWorkload` reproduces, for a simulated slice of its
original benchmark: the thread topology, the sync-op rate (through lock
round-trips on a contention-profiled lock population), the syscall rate
(through file I/O and occasional memory-mapping calls), and the
compute-to-synchronization granularity.  All randomness is seeded by the
spec alone, so every variant of an MVEE run executes an identical program
— the only nondeterminism is the scheduler's, exactly as in the paper's
threat model.
"""

from __future__ import annotations

import random

from repro.guest.program import GuestContext, GuestProgram
from repro.guest.gomp import parallel_for
from repro.guest.sync import Barrier, CondVar, Mutex, SpinLock
from repro.workloads.spec import SlicePlan, WorkloadSpec, plan_slice

#: Effective sync ops per lock round trip (CAS + store, plus the average
#: contended-retry traffic observed in calibration runs).
OPS_PER_ACQUIRE = 2.1

#: Minimum worker units per slice (near-idle specs still do *something*;
#: units beyond the op budget are pure compute).
MIN_UNITS = 4

#: Share of lock pool treated as "hot" (globally shared).
HOT_FRACTION = 0.25


class BoundedQueue:
    """Guest-level bounded queue (mutex + condvars) for pipelines."""

    def __init__(self, ctx: GuestContext, name: str, capacity: int = 8):
        self.capacity = capacity
        self.mutex = Mutex(ctx.alloc_static(f"{name}.mutex"))
        self.not_full = CondVar(ctx.alloc_static(f"{name}.not_full"))
        self.not_empty = CondVar(ctx.alloc_static(f"{name}.not_empty"))
        self.count_addr = ctx.alloc_static(f"{name}.count")
        self.head_addr = ctx.alloc_static(f"{name}.head")
        self.slots = [ctx.alloc_static(f"{name}.slot{i}")
                      for i in range(capacity)]

    def push(self, ctx: GuestContext, value: int):
        yield from self.mutex.acquire(ctx)
        while ctx.mem_load(self.count_addr) >= self.capacity:
            yield from self.not_full.wait(ctx, self.mutex)
        head = ctx.mem_load(self.head_addr)
        count = ctx.mem_load(self.count_addr)
        ctx.mem_store(self.slots[(head + count) % self.capacity], value)
        ctx.mem_store(self.count_addr, count + 1)
        yield from self.mutex.release(ctx)
        yield from self.not_empty.signal(ctx)

    def pop(self, ctx: GuestContext):
        yield from self.mutex.acquire(ctx)
        while ctx.mem_load(self.count_addr) == 0:
            yield from self.not_empty.wait(ctx, self.mutex)
        head = ctx.mem_load(self.head_addr)
        value = ctx.mem_load(self.slots[head % self.capacity])
        ctx.mem_store(self.head_addr, head + 1)
        ctx.mem_store(self.count_addr,
                      ctx.mem_load(self.count_addr) - 1)
        yield from self.mutex.release(ctx)
        yield from self.not_full.signal(ctx)
        return value


class SyntheticWorkload(GuestProgram):
    """A benchmark twin; see the module docstring."""

    def __init__(self, spec: WorkloadSpec, scale: float = 1.0,
                 plan: SlicePlan | None = None):
        self.spec = spec
        self.scale = scale
        self.plan = plan or plan_slice(spec, scale=scale)
        self.name = spec.name

    # -- shared helpers ------------------------------------------------------

    def _allocate_locks(self, ctx: GuestContext) -> list[SpinLock]:
        locks = []
        for index in range(self.spec.n_locks):
            lock = SpinLock(ctx.alloc_static(f"lock{index}"))
            ctx.alloc_static(f"data{index}")
            locks.append(lock)
        return locks

    def _lock_index(self, rng: random.Random, worker: int) -> int:
        """Pick a lock: hot (shared) with probability ``contention``."""
        n_locks = self.spec.n_locks
        n_hot = max(1, int(n_locks * HOT_FRACTION))
        if rng.random() < self.spec.contention or n_locks <= n_hot:
            return rng.randrange(n_hot)
        span = max(1, (n_locks - n_hot) // max(self.spec.workers, 1))
        base = n_hot + (worker * span) % max(n_locks - n_hot, 1)
        return base + rng.randrange(span) if span > 1 else base

    def _locked_update(self, ctx, locks, index):
        """One lock round trip protecting a data update."""
        lock = locks[index]
        data_addr = ctx.static_addr(f"data{index}")
        yield from lock.acquire(ctx)
        value = ctx.mem_load(data_addr)
        yield from ctx.compute(
            min(4_000.0, max(60.0, self.plan.gap_cycles * 0.15)))
        ctx.mem_store(data_addr, value + 1)
        yield from lock.release(ctx)
        return value

    def _io_action(self, ctx, rng, fd_out, fd_in):
        kind = rng.random()
        if kind < 0.70:
            yield from ctx.write(fd_out, b"x" * 64)
        elif kind < 0.92:
            yield from ctx.read(fd_in, 64)
        else:
            addr = yield from ctx.syscall("mmap", 4096)
            yield from ctx.syscall("munmap", addr)

    def _digest(self, ctx, observations=()) -> int:
        """Slice result: counter totals plus the workers' observations.

        The observation component is a pure function of the global
        increment interleaving, so the digest write at the end of main
        is exactly the kind of schedule-dependent output through which
        benign divergence becomes externally visible (Section 1).
        """
        totals = sum(ctx.mem_load(ctx.static_addr(f"data{i}"))
                     for i in range(self.spec.n_locks))
        witness = hash(tuple(observations)) & 0xFFFF
        return (totals + witness) & 0xFFFFFF

    # -- entry point ------------------------------------------------------------

    def main(self, ctx: GuestContext):
        ctx.vm.kernel.disk.create(f"/input/{self.spec.name}.dat").write_at(
            0, b"i" * 4096)
        if self.spec.topology == "pipeline":
            result = yield from self._main_pipeline(ctx)
        elif self.spec.topology == "phases":
            result = yield from self._main_phases(ctx)
        elif self.spec.topology == "gomp":
            result = yield from self._main_gomp(ctx)
        else:
            result = yield from self._main_data_parallel(ctx)
        yield from ctx.printf(f"{self.spec.name}: digest={result}\n")
        return result

    # -- data parallel -------------------------------------------------------------

    def _worker_budget(self, threads: int) -> tuple[int, int, int, float]:
        """(acquires, syscalls, units, gap) per worker thread."""
        plan = self.plan
        sync_ops = plan.sync_ops_total if self.spec.sync_rate_k else 0
        acquires = int(sync_ops / OPS_PER_ACQUIRE / threads)
        # Near-idle specs (swaptions does 10 syscalls *per second*) must
        # not be given artificial I/O; zero is a valid budget.
        syscalls = plan.syscalls_total // threads
        if plan.syscalls_total and syscalls == 0 and threads <= 4:
            syscalls = 1
        units = max(MIN_UNITS, acquires + syscalls)
        gap = plan.duration_cycles / units
        return acquires, syscalls, units, min(gap, 4_000_000.0)

    def _main_data_parallel(self, ctx: GuestContext):
        locks = self._allocate_locks(ctx)
        spec = self.spec
        acquires, syscalls, units, gap = self._worker_budget(spec.workers)
        tids = yield from ctx.spawn_all(
            self._data_worker,
            [(locks, i, acquires, syscalls, units, gap)
             for i in range(spec.workers)])
        observations = yield from ctx.join_all(tids)
        return self._digest(ctx, observations)

    def _data_worker(self, ctx, locks, worker, acquires, syscalls, units,
                     gap):
        rng = random.Random(f"{self.spec.name}:{worker}")
        fd_in = fd_out = None
        if syscalls:
            fd_in = yield from ctx.open(f"/input/{self.spec.name}.dat")
            fd_out = yield from ctx.open(
                f"/out/{self.spec.name}.w{worker}", "w")
        # Interleave the op budget across the units; excess units are
        # pure compute (the near-idle benchmarks' character).
        sys_every = units / syscalls if syscalls else 0
        acq_every = units / acquires if acquires else 0
        witness = 0  # running hash over every observed value: a full
        sys_done = acq_done = 0   # record of this thread's interleaving
        for unit in range(units):
            yield from ctx.compute(gap)
            if syscalls and unit >= sys_every * (sys_done + 1) - 1:
                yield from self._io_action(ctx, rng, fd_out, fd_in)
                sys_done += 1
            elif acquires and unit >= acq_every * (acq_done + 1) - 1:
                index = self._lock_index(rng, worker)
                observed = yield from self._locked_update(ctx, locks,
                                                          index)
                witness = hash((witness, index, observed))
                acq_done += 1
        # Drain any leftover acquires (rounding) so the budget is met.
        for _ in range(acquires - acq_done):
            index = self._lock_index(rng, worker)
            observed = yield from self._locked_update(ctx, locks, index)
            witness = hash((witness, index, observed))
        if syscalls:
            yield from ctx.close(fd_out)
            yield from ctx.close(fd_in)
        return witness & 0xFFFFFFFF

    # -- barrier phases ---------------------------------------------------------------

    def _main_phases(self, ctx: GuestContext, phases: int = 6):
        locks = self._allocate_locks(ctx)
        spec = self.spec
        barrier = Barrier(ctx.alloc_static("phase.count"),
                          ctx.alloc_static("phase.gen"), spec.workers)
        acquires, syscalls, units, gap = self._worker_budget(spec.workers)
        # Scale the phase count to the sync budget so near-idle specs
        # (radix) do not spend their entire budget on barrier traffic.
        per_barrier_ops = spec.workers * 5
        phases = max(1, min(phases,
                            self.plan.sync_ops_total
                            // max(per_barrier_ops, 1)))
        # Barrier traffic (~5 ops per wait) consumes sync budget.
        acquires = max(0, acquires - phases * 2)
        tids = yield from ctx.spawn_all(
            self._phase_worker,
            [(locks, barrier, i, phases, acquires, syscalls, units, gap)
             for i in range(spec.workers)])
        observations = yield from ctx.join_all(tids)
        return self._digest(ctx, observations)

    def _phase_worker(self, ctx, locks, barrier, worker, phases,
                      acquires, syscalls, units, gap):
        rng = random.Random(f"{self.spec.name}:{worker}")
        observed = 0
        fd_in = fd_out = None
        if syscalls:
            fd_in = yield from ctx.open(f"/input/{self.spec.name}.dat")
            fd_out = yield from ctx.open(
                f"/out/{self.spec.name}.w{worker}", "w")
        units_per_phase = max(1, units // phases)
        acq_per_phase = acquires // phases
        sys_per_phase = max(1, syscalls // phases)
        for _phase in range(phases):
            acq_done = sys_done = 0
            for unit in range(units_per_phase):
                yield from ctx.compute(gap)
                if (syscalls and sys_done < sys_per_phase
                        and unit * sys_per_phase
                        >= sys_done * units_per_phase):
                    yield from self._io_action(ctx, rng, fd_out, fd_in)
                    sys_done += 1
                elif acq_done < acq_per_phase:
                    index = self._lock_index(rng, worker)
                    value = yield from self._locked_update(ctx, locks,
                                                           index)
                    observed = hash((observed, index, value)) & 0xFFFFFFFF
                    acq_done += 1
            yield from barrier.wait(ctx)
        if syscalls:
            yield from ctx.close(fd_out)
            yield from ctx.close(fd_in)
        return observed

    # -- pipeline (dedup / ferret / vips) -------------------------------------------------

    def _main_pipeline(self, ctx: GuestContext):
        spec, plan = self.spec, self.plan
        fixed, per_worker = spec.pipeline_threads
        stages = max(2, (fixed + per_worker))  # stage count
        threads_per_stage = max(1, spec.total_threads // stages)
        queue_ops_per_token = 4  # effective rate-calibrated cost/token
        tokens = max(threads_per_stage * 4,
                     plan.sync_ops_total // (stages * queue_ops_per_token))
        io_budget = plan.syscalls_total
        io_every = max(1, (2 * tokens) // max(io_budget, 1))
        # Pace each stage worker so its token share spans the slice.
        self._pipeline_gap = (plan.duration_cycles
                              / max(tokens // threads_per_stage, 1))
        self._pipeline_gap = min(self._pipeline_gap, 4_000_000.0)
        queues = [BoundedQueue(ctx, f"q{i}") for i in range(stages - 1)]
        hot_lock = SpinLock(ctx.alloc_static("pipeline.hot_lock"))
        ctx.alloc_static("pipeline.hot_data")
        ctx.alloc_static("data0")  # digest compatibility
        tids = []
        for stage in range(stages):
            for worker in range(threads_per_stage):
                tid = yield from ctx.spawn(
                    self._stage_worker, stage, stages, worker,
                    threads_per_stage, queues, hot_lock, tokens,
                    io_every)
                tids.append(tid)
        observations = yield from ctx.join_all(tids)
        witness = hash(tuple(observations)) & 0xFFFF
        total = ctx.mem_load(ctx.static_addr("pipeline.hot_data"))
        return (total + witness) & 0xFFFFFF

    def _stage_worker(self, ctx, stage, stages, worker, per_stage,
                      queues, hot_lock, tokens, io_every):
        rng = random.Random(f"{self.spec.name}:{stage}:{worker}")
        gap = self._pipeline_gap
        observed = 0
        share = tokens // per_stage + (1 if worker < tokens % per_stage
                                       else 0)
        # Only the pipeline ends touch files (stage 0 reads input, the
        # last stage writes output); middle stages are pure transforms.
        fd_in = fd_out = None
        if stage == 0:
            fd_in = yield from ctx.open(f"/input/{self.spec.name}.dat")
        if stage == stages - 1:
            fd_out = yield from ctx.open(
                f"/out/{self.spec.name}.s{stage}w{worker}", "w")
        hot_data = ctx.static_addr("pipeline.hot_data")
        if stage == 0:
            for token in range(share):
                yield from ctx.compute(gap)
                if token % io_every == 0:
                    yield from ctx.read(fd_in, 128)
                yield from queues[0].push(ctx, token)
            # One poison pill per producer: stage k has as many consumers
            # as stage 0 has producers, and each consumer forwards its
            # pill downstream, so the count is preserved along the chain.
            yield from queues[0].push(ctx, -1)
        else:
            upstream = queues[stage - 1]
            downstream = queues[stage] if stage < stages - 1 else None
            while True:
                token = yield from upstream.pop(ctx)
                if token == -1:
                    if downstream is not None:
                        yield from downstream.push(ctx, -1)
                    break
                yield from ctx.compute(gap)
                # dedup-style shared hash-table update on a hot lock.
                if rng.random() < self.spec.contention:
                    yield from hot_lock.acquire(ctx)
                    value = ctx.mem_load(hot_data)
                    ctx.mem_store(hot_data, value + 1)
                    observed = hash((observed, value)) & 0xFFFFFFFF
                    yield from hot_lock.release(ctx)
                if downstream is not None:
                    yield from downstream.push(ctx, token)
                elif token % io_every == 0:
                    yield from ctx.write(fd_out, b"o" * 128)
        if fd_in is not None:
            yield from ctx.close(fd_in)
        if fd_out is not None:
            yield from ctx.close(fd_out)
        return observed

    # -- OpenMP (freqmine) ---------------------------------------------------------------------

    def _main_gomp(self, ctx: GuestContext):
        spec, plan = self.spec, self.plan
        ctx.alloc_static("data0")
        chunk = 4
        iterations = max(spec.workers * chunk,
                         plan.sync_ops_total * chunk)
        work = plan.duration_cycles * spec.workers / iterations
        yield from parallel_for(ctx, workers=spec.workers,
                                iterations=iterations, body=None,
                                chunk=chunk,
                                work_cycles=min(work, 4_000_000.0))
        return iterations & 0xFFFFFF


def make_benchmark(name: str, scale: float = 1.0) -> SyntheticWorkload:
    """Instantiate a benchmark twin by Table 2 name."""
    from repro.workloads.spec import spec_by_name

    return SyntheticWorkload(spec_by_name(name), scale=scale)
