"""Tests for the textual assembly front end."""

import pytest

from repro.analysis.asmtext import (
    LISTING1_ASM,
    AsmParseError,
    parse_asm,
)
from repro.analysis.identify import identify_sync_ops
from repro.analysis.ir import AddrOf, Copy, HeapAlloc, Imm, Mem, Reg
from repro.analysis.scanner import scan_module


class TestOperandParsing:
    def test_register(self):
        module = parse_asm(".func f\nmov %eax, %ebx\n")
        ins = module.functions[0].instructions[0]
        assert ins.operands == (Reg("ebx"), Reg("eax"))  # dst first

    def test_immediate_and_memory(self):
        module = parse_asm(".func f\nmov $7, (ptr)\n")
        ins = module.functions[0].instructions[0]
        assert ins.operands == (Mem("ptr"), Imm(7))
        assert ins.is_store

    def test_memory_with_offset(self):
        module = parse_asm(".func f\nmov 8(ptr), %eax\n")
        mem_op = module.functions[0].instructions[0].memory_operands()[0]
        assert (mem_op.ptr, mem_op.offset) == ("ptr", 8)

    def test_bad_operand_reports_line(self):
        with pytest.raises(AsmParseError) as excinfo:
            parse_asm(".func f\nmov @wat, %eax\n")
        assert "line 2" in str(excinfo.value)

    def test_dangling_lock_rejected(self):
        with pytest.raises(AsmParseError):
            parse_asm(".func f\nlock\n")


class TestDirectives:
    def test_module_and_function_names(self):
        module = parse_asm(".module libx.so\n.func alpha\nnop\n"
                           ".func beta\nnop\n")
        assert module.name == "libx.so"
        assert [fn.name for fn in module.functions] == ["alpha", "beta"]

    def test_loc_attaches_debug_info(self):
        module = parse_asm(".func f\n.loc foo.c 42\nnop\n")
        assert module.functions[0].instructions[0].source == ("foo.c", 42)

    def test_facts(self):
        module = parse_asm(
            ".func f\n"
            ".fact p = &x\n"
            ".fact q = p\n"
            ".fact h = malloc node_t @site9\n")
        facts = module.functions[0].pointer_facts
        assert facts[0] == AddrOf("p", "x")
        assert facts[1] == Copy("q", "p")
        assert facts[2] == HeapAlloc("h", "site9", "node_t")

    def test_unknown_fact_rejected(self):
        with pytest.raises(AsmParseError):
            parse_asm(".func f\n.fact p <- &x\n")

    def test_site_annotation(self):
        module = parse_asm(".func f\nmov $0, (p) ; site=lib.x.store\n")
        assert module.functions[0].instructions[0].site == "lib.x.store"

    def test_unaligned_suffix(self):
        module = parse_asm(".func f\nmov.u $0, (p)\n")
        assert not module.functions[0].instructions[0].aligned


class TestPipelineIntegration:
    def test_listing1_matches_builtin_corpus(self):
        """The textual Listing 1 classifies exactly like the handwritten
        IR module: 1 type (i), 0 type (ii), 1 type (iii)."""
        module = parse_asm(LISTING1_ASM)
        report = identify_sync_ops(module)
        assert report.counts == (1, 0, 1)
        assert report.sites() == {"listing1.lock.cmpxchg",
                                  "listing1.unlock.store"}

    def test_scanner_finds_lock_and_xchg(self):
        listing = """
        .func f
        .fact p = &v
        lock xadd %eax, (p)
        xchg %ebx, (p)
        mov (p), %ecx
        mov %ecx, %edx
        """
        scan = scan_module(parse_asm(listing))
        assert scan.counts == (1, 1)
        assert scan.sync_pointers == {"p"}

    def test_debug_lines_flow_to_report(self):
        module = parse_asm(LISTING1_ASM)
        scan = scan_module(module)
        assert ("listing1.c", 4) in scan.source_lines

    def test_unaligned_store_not_type3(self):
        listing = """
        .func f
        .fact p = &v
        lock cmpxchg %eax, (p)
        mov.u $0, (p)
        """
        report = identify_sync_ops(parse_asm(listing))
        assert report.counts == (1, 0, 0)
