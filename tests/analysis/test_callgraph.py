"""Tests for call-graph construction, including indirect calls via points-to."""

import pytest

from repro.analysis.callgraph import build_callgraph
from repro.analysis.ir import (AddrOf, Copy, Function, Instruction, Module,
                               Reg)


def I(opcode, *operands, **kwargs):
    return Instruction(opcode, tuple(operands), **kwargs)


def module(functions, name="m"):
    return Module(name=name, functions=list(functions))


class TestDirectCalls:
    def test_simple_chain(self):
        m = module([
            Function("main", [I("call", "helper"), I("ret")]),
            Function("helper", [I("ret")]),
        ])
        cg = build_callgraph(m)
        assert cg.callees("main") == frozenset({"helper"})
        assert cg.callers("helper") == frozenset({"main"})
        assert cg.roots() == ["main"]
        assert cg.reachable("main") == frozenset({"main", "helper"})

    def test_call_to_unknown_function_has_no_edge(self):
        m = module([Function("main", [I("call", "libc_exit"), I("ret")])])
        cg = build_callgraph(m)
        assert cg.callees("main") == frozenset()
        (site,) = cg.sites
        assert site.direct
        assert site.callees == ()

    def test_multiple_sites_recorded(self):
        m = module([
            Function("main", [I("call", "a"), I("call", "a"), I("ret")]),
            Function("a", [I("ret")]),
        ])
        cg = build_callgraph(m)
        assert len([s for s in cg.sites if s.caller == "main"]) == 2
        assert cg.callees("main") == frozenset({"a"})


class TestIndirectCalls:
    def test_function_pointer_resolved_via_pointsto(self):
        m = module([
            Function("main", [I("call", Reg("fp")), I("ret")],
                     pointer_facts=[AddrOf("fp", "worker")]),
            Function("worker", [I("ret")]),
        ])
        cg = build_callgraph(m)
        assert cg.callees("main") == frozenset({"worker"})
        (site,) = cg.sites
        assert not site.direct

    def test_pointer_copy_chain(self):
        m = module([
            Function("main", [I("call", Reg("fp2")), I("ret")],
                     pointer_facts=[AddrOf("fp1", "worker"),
                                    Copy("fp2", "fp1")]),
            Function("worker", [I("ret")]),
        ])
        cg = build_callgraph(m)
        assert cg.callees("main") == frozenset({"worker"})

    def test_pointer_to_non_function_filtered(self):
        m = module([
            Function("main", [I("call", Reg("fp")), I("ret")],
                     pointer_facts=[AddrOf("fp", "some_global")]),
        ])
        cg = build_callgraph(m)
        assert cg.callees("main") == frozenset()

    def test_steensgaard_also_resolves(self):
        m = module([
            Function("main", [I("call", Reg("fp")), I("ret")],
                     pointer_facts=[AddrOf("fp", "worker")]),
            Function("worker", [I("ret")]),
        ])
        cg = build_callgraph(m, analysis="steensgaard")
        assert cg.callees("main") == frozenset({"worker"})


class TestRootsAndReachability:
    def test_roots_fall_back_to_all_when_fully_cyclic(self):
        m = module([
            Function("ping", [I("call", "pong"), I("ret")]),
            Function("pong", [I("call", "ping"), I("ret")]),
        ])
        cg = build_callgraph(m)
        assert set(cg.roots()) == {"ping", "pong"}

    def test_reachable_is_transitive(self):
        m = module([
            Function("a", [I("call", "b"), I("ret")]),
            Function("b", [I("call", "c"), I("ret")]),
            Function("c", [I("ret")]),
            Function("island", [I("ret")]),
        ])
        cg = build_callgraph(m)
        assert cg.reachable("a") == frozenset({"a", "b", "c"})
        assert "island" not in cg.reachable("a")
        assert set(cg.roots()) == {"a", "island"}

    def test_unknown_analysis_name_raises(self):
        m = module([Function("main", [I("ret")])])
        with pytest.raises(ValueError, match="analysis"):
            build_callgraph(m, analysis="magic")
