"""Tests for basic-block CFG construction over the mini-IR."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.ir import Function, Instruction, Reg, mem


def I(opcode, *operands, **kwargs):
    return Instruction(opcode, tuple(operands), **kwargs)


def fn(*instructions, name="f"):
    return Function(name=name, instructions=list(instructions))


class TestStraightLine:
    def test_single_block(self):
        cfg = build_cfg(fn(I("mov", Reg("eax"), mem("p")),
                           I("mov", mem("q"), Reg("eax")),
                           I("ret")))
        assert cfg.block_count() == 1
        assert cfg.edge_count() == 0
        assert cfg.entry is cfg.blocks[0]
        assert cfg.exit_blocks() == [cfg.blocks[0]]
        assert len(cfg.blocks[0].instructions) == 3

    def test_empty_function(self):
        cfg = build_cfg(fn())
        assert cfg.block_count() == 0
        assert cfg.entry is None
        assert cfg.reverse_postorder() == []

    def test_call_does_not_split_blocks(self):
        cfg = build_cfg(fn(I("mov", Reg("eax"), mem("p")),
                           I("call", "helper"),
                           I("mov", mem("p"), Reg("eax"))))
        assert cfg.block_count() == 1

    def test_fall_off_the_end_is_an_exit(self):
        cfg = build_cfg(fn(I("mov", Reg("eax"), mem("p"))))
        assert cfg.exit_blocks() == [cfg.blocks[0]]


class TestBranches:
    def diamond(self):
        #   B0: jcc then   B1: jmp join   B2(then):   B3(join): ret
        return build_cfg(fn(
            I("jcc", "then"),
            I("jmp", "join"),
            I("label", "then"),
            I("label", "join"),
            I("ret")))

    def test_diamond_shape(self):
        cfg = self.diamond()
        assert cfg.block_count() == 4
        assert cfg.blocks[0].successors == [2, 1]
        assert cfg.blocks[1].successors == [3]
        assert cfg.blocks[2].successors == [3]
        assert cfg.blocks[3].successors == []
        assert sorted(cfg.blocks[3].predecessors) == [1, 2]

    def test_blocks_get_their_labels(self):
        cfg = self.diamond()
        assert cfg.blocks[2].label == "then"
        assert cfg.blocks[3].label == "join"
        assert cfg.blocks[0].label is None

    def test_reverse_postorder_topological_on_dag(self):
        cfg = self.diamond()
        order = [b.index for b in cfg.reverse_postorder()]
        assert sorted(order) == [0, 1, 2, 3]
        assert order[0] == 0
        assert order[-1] == 3  # join after both arms

    def test_loop_back_edge(self):
        cfg = build_cfg(fn(
            I("label", "head"),
            I("mov", Reg("eax"), mem("p")),
            I("jcc", "head"),
            I("ret")))
        assert cfg.blocks[0].successors == [0, 1]
        assert 0 in cfg.blocks[0].predecessors

    def test_ret_ends_control_flow(self):
        cfg = build_cfg(fn(I("ret"), I("label", "dead"), I("ret")))
        assert cfg.blocks[0].successors == []
        assert cfg.blocks[1].predecessors == []

    def test_unreachable_blocks_still_enumerated(self):
        cfg = build_cfg(fn(I("ret"), I("label", "dead"), I("ret")))
        order = [b.index for b in cfg.reverse_postorder()]
        assert order == [0, 1]

    def test_unknown_branch_target_raises(self):
        with pytest.raises(ValueError, match="unknown label"):
            build_cfg(fn(I("jmp", "nowhere")))

    def test_terminator_property(self):
        cfg = build_cfg(fn(I("mov", Reg("eax"), mem("p")), I("ret")))
        assert cfg.blocks[0].terminator.opcode == "ret"
        straight = build_cfg(fn(I("mov", Reg("eax"), mem("p"))))
        assert straight.blocks[0].terminator is None
