"""Tests for the generic worklist fixpoint engine and LockHeldAnalysis."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import DataflowProblem, LockHeldAnalysis, solve
from repro.analysis.ir import Function, Instruction, Reg, imm, mem


def I(opcode, *operands, **kwargs):
    return Instruction(opcode, tuple(operands), **kwargs)


def fn(*instructions, name="f"):
    return Function(name=name, instructions=list(instructions))


def pointsto(ptr):
    """Identity points-to: pointer ``p_X`` resolves to object ``X``."""
    if ptr.startswith("p_"):
        return frozenset({ptr[2:]})
    return frozenset()


LOCKS = frozenset({"A", "B", "G"})


def acquire(name):
    return I("cmpxchg", mem(f"p_{name}"), Reg("eax"), lock_prefix=True)


def release(name):
    return I("mov", mem(f"p_{name}"), imm(0))


class TestLockHeldStraightLine:
    def test_acquire_then_release(self):
        cfg = build_cfg(fn(acquire("A"), release("A"), I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        block = cfg.blocks[0]
        assert result.value_before(block) == frozenset()
        assert result.value_after(block) == frozenset()

    def test_held_at_exit_when_never_released(self):
        cfg = build_cfg(fn(acquire("A"), acquire("B"), I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        assert result.value_after(cfg.blocks[0]) == frozenset({"A", "B"})

    def test_non_lock_objects_ignored(self):
        cfg = build_cfg(fn(acquire("counter"), I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        assert result.value_after(cfg.blocks[0]) == frozenset()

    def test_xchg_counts_as_rmw(self):
        cfg = build_cfg(fn(I("xchg", mem("p_A"), Reg("eax")), I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        assert result.value_after(cfg.blocks[0]) == frozenset({"A"})

    def test_plain_load_does_not_acquire(self):
        cfg = build_cfg(fn(I("mov", Reg("eax"), mem("p_A")), I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        assert result.value_after(cfg.blocks[0]) == frozenset()

    def test_entry_seed(self):
        cfg = build_cfg(fn(release("G"), I("ret")))
        analysis = LockHeldAnalysis(pointsto, LOCKS, entry=frozenset({"G", "A"}))
        result = solve(cfg, analysis)
        assert result.value_before(cfg.blocks[0]) == frozenset({"G", "A"})
        assert result.value_after(cfg.blocks[0]) == frozenset({"A"})


class TestLockHeldMerges:
    def test_intersection_at_join(self):
        # One arm acquires A+B, the other only A: join holds only A.
        cfg = build_cfg(fn(
            acquire("A"),
            I("jcc", "other"),
            acquire("B"),
            I("jmp", "join"),
            I("label", "other"),
            I("label", "join"),
            I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        join_block = next(b for b in cfg.blocks if b.label == "join")
        assert result.value_before(join_block) == frozenset({"A"})

    def test_loop_reaches_fixpoint(self):
        # Lock held around a loop body stays held on the back edge.
        cfg = build_cfg(fn(
            acquire("A"),
            I("label", "head"),
            I("mov", Reg("eax"), mem("p_x")),
            I("jcc", "head"),
            release("A"),
            I("ret")))
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        head = next(b for b in cfg.blocks if b.label == "head")
        assert result.value_before(head) == frozenset({"A"})
        exit_block = cfg.exit_blocks()[0]
        assert result.value_after(exit_block) == frozenset()
        assert result.iterations <= len(cfg.blocks) * 4


class TestEngineGenerality:
    def test_backward_liveness_style_problem(self):
        # Backward union-of-successors "reaches ret" analysis: every block
        # from which the ret is reachable should carry the token.
        class ReachesRet(DataflowProblem):
            direction = "backward"

            def initial(self, cfg):
                return frozenset()

            def join(self, values):
                out = frozenset()
                for value in values:
                    out = out | value
                return out

            def transfer(self, block, value):
                if block.terminator is not None and block.terminator.opcode == "ret":
                    return value | {"ret"}
                return value

        cfg = build_cfg(fn(
            I("jcc", "end"),
            I("mov", Reg("eax"), mem("p_x")),
            I("label", "end"),
            I("ret")))
        result = solve(cfg, ReachesRet())
        # For backward problems the analysis-direction "out" value is the
        # program-order entry value of the block.
        assert all("ret" in result.value_after(b) for b in cfg.blocks)

    def test_non_monotone_transfer_hits_budget(self):
        # A transfer that flips between two values on a loop never converges;
        # the engine must abort with a diagnostic rather than spin forever.
        class Flipper(DataflowProblem):
            def initial(self, cfg):
                return 0

            def join(self, values):
                return max(values)

            def transfer(self, block, value):
                return (value + 1) % 2 if block.successors else value

        cfg = build_cfg(fn(
            I("label", "head"),
            I("jcc", "head"),
            I("ret")))
        with pytest.raises(RuntimeError, match="did not converge"):
            solve(cfg, Flipper())

    def test_empty_function(self):
        cfg = build_cfg(fn())
        result = solve(cfg, LockHeldAnalysis(pointsto, LOCKS))
        assert result.iterations == 0
