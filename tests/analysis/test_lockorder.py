"""Tests for the static lock-order analysis and the static/dynamic
cross-check."""

import pytest

from repro.analysis.corpus import (abba_module, deadlock_corpus,
                                   philosophers_module, trylock_module)
from repro.analysis.ir import (AddrOf, Function, GlobalVar, Instruction,
                               Module, Reg, imm, mem)
from repro.analysis.lockorder import (CONFIRMED, REFUTED, UNEXERCISED,
                                      analyze_corpus, analyze_module,
                                      cross_check)
from repro.races.deadlock import (DeadlockReport, DeadlockRecord,
                                  DeadlockThread)


def acquire(pointer, site=None, source=None):
    return Instruction("cmpxchg", (mem(pointer), Reg("eax")),
                       lock_prefix=True, site=site, source=source)


def release(pointer, source=None):
    return Instruction("mov", (mem(pointer), imm(0)), source=source)


class TestAbba:
    def test_cycle_flagged_with_sites_and_lines(self):
        report = analyze_module(abba_module())
        assert report.lock_objects == frozenset({"lock_a", "lock_b"})
        assert report.edges == frozenset({("lock_a", "lock_b"),
                                          ("lock_b", "lock_a")})
        (candidate,) = report.candidates
        assert not candidate.suppressed
        assert candidate.name() == "lock_a -> lock_b -> lock_a"
        assert candidate.sites() == frozenset({
            "abba.thread_a.lock_b.cmpxchg",
            "abba.thread_b.lock_a.cmpxchg"})
        assert candidate.source_lines() == frozenset({
            ("abba.c", 11), ("abba.c", 21)})
        assert candidate.functions() == frozenset({"thread_a", "thread_b"})
        assert report.flagged == [candidate]
        assert not report.clean

    def test_witnesses_per_edge(self):
        report = analyze_module(abba_module())
        (candidate,) = report.candidates
        (ab,) = candidate.witnesses_for("lock_a", "lock_b")
        assert ab.function == "thread_a"
        assert ab.held == frozenset({"lock_a"})
        (ba,) = candidate.witnesses_for("lock_b", "lock_a")
        assert ba.function == "thread_b"

    def test_summary_mentions_candidate(self):
        report = analyze_module(abba_module())
        assert "1 deadlock candidate(s)" in report.summary()


class TestSuppression:
    def test_trylock_edge_suppresses_cycle(self):
        report = analyze_module(trylock_module())
        (candidate,) = report.candidates
        assert candidate.suppressed
        assert candidate.suppression == "trylock"
        assert report.clean
        assert report.flagged == []

    def test_gate_ordered_suppression(self):
        # Both inversions run under a common outer gate lock G, so the
        # edges can never interleave: A->B and B->A are both flagged as
        # ordering edges but the cycle is demoted.
        module = Module(name="gated")
        module.functions.append(Function(
            name="left",
            instructions=[
                acquire("l_gate", source=("gated.c", 5)),
                acquire("l_a", source=("gated.c", 6)),
                acquire("l_b", source=("gated.c", 7)),
                release("l_b", ("gated.c", 8)),
                release("l_a", ("gated.c", 9)),
                release("l_gate", ("gated.c", 10)),
            ],
            pointer_facts=[AddrOf("l_gate", "gate"), AddrOf("l_a", "A"),
                           AddrOf("l_b", "B")]))
        module.functions.append(Function(
            name="right",
            instructions=[
                acquire("r_gate", source=("gated.c", 15)),
                acquire("r_b", source=("gated.c", 16)),
                acquire("r_a", source=("gated.c", 17)),
                release("r_a", ("gated.c", 18)),
                release("r_b", ("gated.c", 19)),
                release("r_gate", ("gated.c", 20)),
            ],
            pointer_facts=[AddrOf("r_gate", "gate"), AddrOf("r_a", "A"),
                           AddrOf("r_b", "B")]))
        module.globals += [GlobalVar("gate"), GlobalVar("A"),
                           GlobalVar("B")]
        report = analyze_module(module)
        cycle = next(c for c in report.candidates
                     if set(c.cycle) == {"A", "B"})
        assert cycle.suppressed
        assert cycle.suppression == "gate-ordered"

    def test_gate_on_one_side_only_does_not_suppress(self):
        module = Module(name="halfgated")
        module.functions.append(Function(
            name="left",
            instructions=[
                acquire("l_gate"), acquire("l_a"), acquire("l_b"),
                release("l_b"), release("l_a"), release("l_gate"),
            ],
            pointer_facts=[AddrOf("l_gate", "gate"), AddrOf("l_a", "A"),
                           AddrOf("l_b", "B")]))
        module.functions.append(Function(
            name="right",
            instructions=[
                acquire("r_b"), acquire("r_a"),
                release("r_a"), release("r_b"),
            ],
            pointer_facts=[AddrOf("r_a", "A"), AddrOf("r_b", "B")]))
        report = analyze_module(module)
        cycle = next(c for c in report.candidates
                     if set(c.cycle) == {"A", "B"})
        assert not cycle.suppressed


class TestInterprocedural:
    def test_philosophers_cycle_spans_call_boundaries(self):
        # Each left-fork acquisition is in philosopher_i; the right fork
        # is taken in the callee, so the edge only exists if the walk
        # carries held sets across calls (reached via indirect calls).
        report = analyze_module(philosophers_module(3))
        flagged = report.flagged
        assert any(set(c.cycle) == {"fork_0", "fork_1", "fork_2"}
                   for c in flagged)
        cycle = next(c for c in flagged
                     if set(c.cycle) == {"fork_0", "fork_1", "fork_2"})
        assert {"take_right_0", "take_right_1",
                "take_right_2"} <= cycle.functions()
        assert "libpthread.mutex.lock.cmpxchg" in cycle.sites()

    def test_witness_call_chain_recorded(self):
        report = analyze_module(philosophers_module(3))
        cycle = next(c for c in report.flagged
                     if set(c.cycle) == {"fork_0", "fork_1", "fork_2"})
        chains = {w.call_chain for w in cycle.witnesses}
        assert any("spawn_table" in chain for chain in chains)

    def test_no_false_positive_on_consistent_order(self):
        # Two functions nesting A -> B in the same order: edges exist,
        # but no cycle.
        module = Module(name="ordered")
        for name in ("f", "g"):
            module.functions.append(Function(
                name=name,
                instructions=[
                    acquire(f"{name}_a"), acquire(f"{name}_b"),
                    release(f"{name}_b"), release(f"{name}_a"),
                ],
                pointer_facts=[AddrOf(f"{name}_a", "A"),
                               AddrOf(f"{name}_b", "B")]))
        report = analyze_module(module)
        assert report.edges == frozenset({("A", "B")})
        assert report.candidates == []
        assert report.clean

    def test_unknown_analysis_raises(self):
        with pytest.raises(ValueError, match="unknown points-to"):
            analyze_module(abba_module(), analysis="wishful")

    def test_analyze_corpus_covers_all_modules(self):
        reports = analyze_corpus(deadlock_corpus())
        assert [r.module for r in reports] == [
            "abba", "trylock_guarded", "philosophers"]
        assert all(r.candidates for r in reports)


def _dynamic_report(**kwargs):
    defaults = dict(records=[], observed_sites=set(), guard_sites=set())
    defaults.update(kwargs)
    return DeadlockReport(**defaults)


def _record_with_sites(*sites):
    threads = tuple(
        DeadlockThread(thread=f"t{i}", holds=(f"lock{i}",),
                       hold_sites=(site,), wants=f"lock{(i + 1) % 2}",
                       wants_site=site)
        for i, site in enumerate(sites))
    return DeadlockRecord(variant=0, at_cycles=1000.0, threads=threads)


class TestCrossCheck:
    def test_suppressed_candidate_refuted_statically(self):
        report = analyze_module(trylock_module())
        (verdict,) = cross_check(report, None)
        assert verdict.classification == REFUTED
        assert "statically suppressed (trylock)" in verdict.reason

    def test_no_dynamic_evidence_means_unexercised(self):
        report = analyze_module(abba_module())
        (verdict,) = cross_check(report, None)
        assert verdict.classification == UNEXERCISED
        assert "no run exercised" in verdict.reason

    def test_matching_record_sites_confirm(self):
        report = analyze_module(abba_module())
        dynamic = _dynamic_report(
            records=[_record_with_sites("abba.thread_a.lock_b.cmpxchg",
                                        "abba.thread_b.lock_a.cmpxchg")])
        (verdict,) = cross_check(report, dynamic)
        assert verdict.classification == CONFIRMED
        assert "abba.thread_a.lock_b.cmpxchg" in verdict.reason

    def test_guard_sites_refute(self):
        # Build an unsuppressed candidate whose sites overlap runtime
        # guard refusals: strip the trylock marker statically by using
        # abba, then claim its sites were guarded at runtime.
        report = analyze_module(abba_module())
        dynamic = _dynamic_report(
            guard_sites={"abba.thread_a.lock_b.cmpxchg"})
        (verdict,) = cross_check(report, dynamic)
        assert verdict.classification == REFUTED
        assert "guard engaged" in verdict.reason

    def test_observed_but_never_cyclic_is_unexercised(self):
        report = analyze_module(abba_module())
        dynamic = _dynamic_report(
            observed_sites={"abba.thread_a.lock_b.cmpxchg",
                            "abba.thread_b.lock_a.cmpxchg"})
        (verdict,) = cross_check(report, dynamic)
        assert verdict.classification == UNEXERCISED
        assert "never formed a cycle" in verdict.reason
