"""Tests for the two-stage sync-op identification pipeline (§4.3)."""

import pytest

from repro.analysis.corpus import (
    NGINX_SYNC_OPS,
    TABLE3_PAPER,
    heap_imprecision_module,
    make_library_module,
    nginx_module,
    paper_corpus,
    spinlock_module,
    volatile_flag_module,
)
from repro.analysis.identify import identify_sync_ops, table3_rows
from repro.analysis.instrument import (
    BEFORE_CALL,
    AFTER_CALL,
    instrument_module,
    instrumented_sites,
)
from repro.analysis.ir import AddrOf, Function, Instruction, Module, Reg, mem
from repro.analysis.scanner import scan_module


class TestStage1Scanner:
    def test_lock_prefix_is_type1(self):
        module = spinlock_module()
        report = scan_module(module)
        assert len(report.type1) == 1
        assert report.type1[0].opcode == "cmpxchg"

    def test_xchg_is_type2(self):
        module = Module(name="m", functions=[Function(
            name="f",
            instructions=[Instruction("xchg", (mem("p"), Reg("eax")))],
            pointer_facts=[AddrOf("p", "v")])])
        report = scan_module(module)
        assert len(report.type2) == 1

    def test_xchg_reg_reg_not_marked(self):
        """XCHG between registers is not a memory access."""
        module = Module(name="m", functions=[Function(
            name="f",
            instructions=[Instruction("xchg",
                                      (Reg("eax"), Reg("ebx")))])])
        report = scan_module(module)
        assert report.counts == (0, 0)

    def test_plain_mov_not_marked_in_stage1(self):
        module = spinlock_module()
        report = scan_module(module)
        stores = [i for _, i in module.all_instructions()
                  if i.opcode == "mov"]
        assert stores and all(i not in report.type1 + report.type2
                              for i in stores)

    def test_sync_pointers_collected(self):
        report = scan_module(spinlock_module())
        assert "ptr_lock" in report.sync_pointers

    def test_debug_source_lines_reported(self):
        report = scan_module(spinlock_module())
        assert ("listing1.c", 4) in report.source_lines


class TestStage2Identification:
    def test_listing1_unlock_store_found(self):
        """Listing 1: the plain unlock store aliases the CAS's variable."""
        report = identify_sync_ops(spinlock_module())
        assert report.counts == (1, 0, 1)
        assert "listing1.unlock.store" in report.sites()

    def test_listing2_volatile_flag_missed(self):
        """Listing 2: the documented false negative — no LOCK/XCHG root."""
        report = identify_sync_ops(volatile_flag_module())
        assert report.counts == (0, 0, 0)

    def test_volatile_extension_recovers_listing2(self):
        """The paper's proposed extension: treat volatile variables as
        sync variables before the points-to stage."""
        report = identify_sync_ops(volatile_flag_module(),
                                   treat_volatile_as_sync=True)
        assert report.counts == (0, 0, 2)

    def test_non_aliasing_accesses_rejected(self):
        module = make_library_module("toy", (2, 1, 3), fillers=50)
        report = identify_sync_ops(module)
        assert report.counts == (2, 1, 3)
        assert report.rejected == 50

    def test_unaligned_accesses_never_type3(self):
        module = spinlock_module()
        module.functions.append(Function(
            name="unaligned",
            instructions=[Instruction("mov", (mem("q"), Reg("eax")),
                                      aligned=False)],
            pointer_facts=[AddrOf("q", "spinlock")]))
        report = identify_sync_ops(module)
        assert len(report.type3) == 1  # only the aligned unlock store

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            identify_sync_ops(spinlock_module(), analysis="magic")


class TestPointsToPrecision:
    def test_steensgaard_unifies_incompatible_heap_objects(self):
        """Section 4.3.1: DSA-style unification misclassifies the plain
        data-buffer access as a sync op; SVF-style subsets do not."""
        steens = identify_sync_ops(heap_imprecision_module(),
                                   analysis="steensgaard")
        anders = identify_sync_ops(heap_imprecision_module(),
                                   analysis="andersen")
        assert len(steens.type3) > len(anders.type3)
        assert len(anders.type3) == 0

    def test_both_analyses_agree_on_simple_corpus(self):
        module = spinlock_module()
        steens = identify_sync_ops(module, analysis="steensgaard")
        anders = identify_sync_ops(module, analysis="andersen")
        assert steens.counts == anders.counts


class TestTable3Corpus:
    def test_counts_match_paper_exactly(self):
        rows = table3_rows(paper_corpus())
        for name, type1, type2, type3 in rows:
            assert (type1, type2, type3) == TABLE3_PAPER[name], name

    def test_nginx_totals_51_sync_ops(self):
        report = identify_sync_ops(nginx_module())
        assert sum(report.counts) == NGINX_SYNC_OPS

    def test_runtime_sites_recovered_for_libpthread(self):
        from repro.guest.sync import LIBPTHREAD_SITES
        corpus = {m.name: m for m in paper_corpus()}
        report = identify_sync_ops(corpus["libpthreads-2.19.so"])
        assert LIBPTHREAD_SITES <= report.sites()

    def test_runtime_sites_recovered_for_libc(self):
        from repro.guest.libc import LIBC_SITES
        corpus = {m.name: m for m in paper_corpus()}
        report = identify_sync_ops(corpus["libc-2.19.so"])
        assert LIBC_SITES <= report.sites()


class TestInstrumentation:
    def test_wrappers_inserted_around_sync_ops(self):
        module = spinlock_module()
        report = identify_sync_ops(module)
        result = instrument_module(module, report)
        assert result.wrapped == 2
        opcodes = [i.opcode for _, i in result.module.all_instructions()]
        cas_index = opcodes.index("cmpxchg")
        assert opcodes[cas_index - 1] == BEFORE_CALL
        assert opcodes[cas_index + 1] == AFTER_CALL

    def test_non_sync_instructions_untouched(self):
        module = make_library_module("toy", (1, 0, 0), fillers=10)
        report = identify_sync_ops(module)
        result = instrument_module(module, report)
        assert result.wrapped == 1
        # 10 fillers + 1 sync op + 2 wrappers
        assert result.module.instruction_count() == 13

    def test_site_union(self):
        reports = [identify_sync_ops(m) for m in paper_corpus()[:3]]
        sites = instrumented_sites(*reports)
        assert "libc.malloc.lock.cmpxchg" in sites
        assert "libpthread.mutex.lock.cmpxchg" in sites

    def test_mismatched_module_copy_raises(self):
        """A report built from a *different copy* of the module matches
        nothing by identity; that used to silently wrap zero sites."""
        from repro.analysis.instrument import InstrumentationMismatchError

        report = identify_sync_ops(spinlock_module())
        fresh_copy = spinlock_module()
        with pytest.raises(InstrumentationMismatchError) as exc:
            instrument_module(fresh_copy, report)
        assert "different module copy" in str(exc.value)

    def test_mismatch_tolerated_when_not_strict(self):
        report = identify_sync_ops(spinlock_module())
        result = instrument_module(spinlock_module(), report,
                                   strict=False)
        assert result.wrapped == 0  # the silent legacy behaviour, opt-in


class TestEndToEndBridge:
    """Static pipeline output drives the MVEE — the full §4 workflow."""

    def test_analysis_driven_instrumentation_runs_clean(self, fast_costs):
        from repro.core.injection import instrument_sites
        from repro.core.mvee import run_mvee
        from tests.guestlib import MutexCounterProgram

        corpus = {m.name: m for m in paper_corpus()}
        sites = instrumented_sites(
            identify_sync_ops(corpus["libpthreads-2.19.so"]),
            identify_sync_ops(corpus["libc-2.19.so"]))
        outcome = run_mvee(MutexCounterProgram(workers=4, iters=60),
                           variants=2, agent="wall_of_clocks", seed=4,
                           costs=fast_costs,
                           instrument=instrument_sites(sites))
        assert outcome.verdict == "clean"

    def test_missing_library_in_analysis_causes_divergence(self,
                                                           fast_costs):
        """Analyze only libc, not libpthread: the mutex sites stay
        un-instrumented and benign divergence returns — the nginx
        phenomenon in miniature."""
        from repro.core.injection import instrument_sites
        from repro.core.mvee import run_mvee
        from tests.guestlib import CounterProgram

        corpus = {m.name: m for m in paper_corpus()}
        sites = instrumented_sites(
            identify_sync_ops(corpus["libc-2.19.so"]))
        outcome = run_mvee(CounterProgram(workers=4, iters=150),
                           variants=2, agent="wall_of_clocks", seed=7,
                           costs=fast_costs,
                           instrument=instrument_sites(sites),
                           max_cycles=5e9)
        assert outcome.verdict != "clean"
