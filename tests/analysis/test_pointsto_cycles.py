"""Cyclic pointer-chain termination and precision tests for both
points-to analyses.

The worklist/unification loops in :mod:`repro.analysis.pointsto` must
reach a fixpoint even when the pointer-assignment graph is cyclic —
``p = q; q = p`` chains, self-copies, and load/store loops through
memory.  These are the shapes that make naive propagation spin.
"""

import pytest

from repro.analysis.ir import (AddrOf, Copy, Function, HeapAlloc, LoadPtr,
                               Module, StorePtr)
from repro.analysis.pointsto import AndersenAnalysis, SteensgaardAnalysis

ANALYSES = [AndersenAnalysis, SteensgaardAnalysis]


def module_with(facts, name="m"):
    return Module(name=name,
                  functions=[Function(name="f", instructions=[],
                                      pointer_facts=list(facts))])


@pytest.mark.parametrize("analysis", ANALYSES)
class TestCopyCycles:
    def test_two_cycle_converges_and_shares_targets(self, analysis):
        result = analysis(module_with([
            AddrOf("p", "obj"),
            Copy("q", "p"),
            Copy("p", "q"),
        ]))
        assert "obj" in result.points_to("p")
        assert "obj" in result.points_to("q")
        assert result.may_alias("p", "q")

    def test_self_copy_is_harmless(self, analysis):
        result = analysis(module_with([
            AddrOf("p", "obj"),
            Copy("p", "p"),
        ]))
        assert result.points_to("p") == frozenset({"obj"})

    def test_three_cycle_with_two_seeds(self, analysis):
        result = analysis(module_with([
            AddrOf("a", "x"),
            AddrOf("b", "y"),
            Copy("b", "a"),
            Copy("c", "b"),
            Copy("a", "c"),
        ]))
        # Around the cycle every variable reaches both objects.
        for var in ("a", "b", "c"):
            assert {"x", "y"} <= set(result.points_to(var))

    def test_cycle_with_no_seed_stays_empty(self, analysis):
        result = analysis(module_with([
            Copy("q", "p"),
            Copy("p", "q"),
        ]))
        assert result.points_to("p") == frozenset()
        assert result.points_to("q") == frozenset()


@pytest.mark.parametrize("analysis", ANALYSES)
class TestIndirectionCycles:
    def test_store_load_loop_through_memory(self, analysis):
        # *p = q; r = *p — with p -> cell, q's targets must flow to r,
        # even when r is then copied back into q (a cycle through memory).
        result = analysis(module_with([
            AddrOf("p", "cell"),
            AddrOf("q", "obj"),
            StorePtr("p", "q"),
            LoadPtr("r", "p"),
            Copy("q", "r"),
        ]))
        assert "obj" in result.points_to("r")

    def test_pointer_stored_into_itself(self, analysis):
        # *p = p with p -> cell: cell's class absorbs p's targets; the
        # analysis must terminate despite the self-reference.
        result = analysis(module_with([
            AddrOf("p", "cell"),
            StorePtr("p", "p"),
            LoadPtr("out", "p"),
        ]))
        assert "cell" in result.points_to("out")

    def test_heap_objects_survive_cycles(self, analysis):
        result = analysis(module_with([
            HeapAlloc("p", "site1", type_name="mutex_t"),
            Copy("q", "p"),
            Copy("p", "q"),
        ]))
        targets = result.points_to("q")
        assert any(getattr(t, "site_id", None) == "site1" for t in targets)


class TestPrecisionDifference:
    def test_andersen_keeps_directionality(self):
        # Copy is directional in Andersen: q gets p's targets, but a
        # fresh unrelated r copied *from* q must not leak back into p.
        facts = [AddrOf("p", "x"), Copy("q", "p"), AddrOf("r", "y"),
                 Copy("q", "r")]
        andersen = AndersenAnalysis(module_with(facts))
        assert andersen.points_to("p") == frozenset({"x"})
        assert andersen.points_to("q") == frozenset({"x", "y"})

    def test_steensgaard_unifies_both_directions(self):
        facts = [AddrOf("p", "x"), Copy("q", "p"), AddrOf("r", "y"),
                 Copy("q", "r")]
        steens = SteensgaardAnalysis(module_with(facts))
        # Unification merges p, q, r into one class holding both objects.
        assert steens.points_to("p") == frozenset({"x", "y"})
        assert steens.points_to("p") == steens.points_to("q")
