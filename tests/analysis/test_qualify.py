"""Tests for the _Atomic qualifier checker and Figure 3 fixpoint loop."""


from repro.analysis.qualify import (
    AtomicQualifierChecker,
    CAddrOf,
    CAsmUse,
    CAssign,
    CAtomicIntrinsic,
    CProgram,
    CVar,
    refactor_to_fixpoint,
)


def program_with(variables, statements):
    program = CProgram()
    for var in variables:
        program.add_var(var)
    program.statements = list(statements)
    return program


class TestCheckerDiagnostics:
    def test_add_qualifier_cast_is_warning(self):
        program = program_with(
            [CVar("p", is_pointer=True, pointee_atomic=True),
             CVar("q", is_pointer=True)],
            [CAssign(dst="p", src="q")])
        diags = AtomicQualifierChecker(program).check()
        assert [d.severity for d in diags] == ["warning"]
        assert diags[0].kind == "qualify-add"

    def test_drop_qualifier_cast_is_error(self):
        program = program_with(
            [CVar("p", is_pointer=True, pointee_atomic=True),
             CVar("q", is_pointer=True)],
            [CAssign(dst="q", src="p")])
        diags = AtomicQualifierChecker(program).check()
        assert [d.severity for d in diags] == ["error"]
        assert diags[0].kind == "qualify-drop"

    def test_atomic_in_asm_is_error(self):
        program = program_with(
            [CVar("lock", atomic=True)],
            [CAsmUse("lock")])
        diags = AtomicQualifierChecker(program).check()
        assert diags and diags[0].kind == "asm-atomic"

    def test_well_typed_program_is_silent(self):
        program = program_with(
            [CVar("lock", atomic=True),
             CVar("p", is_pointer=True, pointee_atomic=True)],
            [CAddrOf(ptr="p", var="lock"), CAtomicIntrinsic("p")])
        assert AtomicQualifierChecker(program).check() == []

    def test_addr_of_atomic_into_plain_pointer_is_error(self):
        program = program_with(
            [CVar("lock", atomic=True), CVar("p", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock")])
        diags = AtomicQualifierChecker(program).check()
        assert diags[0].severity == "error"


class TestFixpointRefactoring:
    def test_qualifier_propagates_through_chain(self):
        """seed -> &lock -> p -> q -> intrinsic: everything qualifies."""
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True),
             CVar("q", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"),
             CAssign(dst="q", src="p"),
             CAtomicIntrinsic("q")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert {"lock", "p", "q"} <= result.qualified
        assert result.unfixable == []
        assert AtomicQualifierChecker(program).check() == []

    def test_propagation_is_bidirectional(self):
        """Qualifying a pointee through one pointer qualifies variables
        reached through other pointers to the same data (down the chain)."""
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True),
             CVar("other"), ],
            [CAddrOf(ptr="p", var="lock"),
             CAddrOf(ptr="p", var="other")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert "other" in result.qualified

    def test_asm_use_is_unfixable(self):
        """Inline-assembly uses survive as errors the tool cannot fix —
        the paper's 'permit _Atomic in easy-to-analyze asm' future work."""
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"), CAsmUse("lock")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert len(result.unfixable) == 1
        assert result.unfixable[0].kind == "asm-atomic"

    def test_fixpoint_reached_in_few_iterations(self):
        chain_vars = [CVar("lock")] + [
            CVar(f"p{i}", is_pointer=True) for i in range(10)]
        statements = [CAddrOf(ptr="p0", var="lock")] + [
            CAssign(dst=f"p{i + 1}", src=f"p{i}") for i in range(9)]
        program = program_with(chain_vars, statements)
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert result.iterations <= 12
        assert all(f"p{i}" in result.qualified for i in range(10))

    def test_empty_seed_no_changes(self):
        program = program_with(
            [CVar("x"), CVar("p", is_pointer=True)],
            [CAddrOf(ptr="p", var="x")])
        result = refactor_to_fixpoint(program, seed_vars=set())
        assert result.qualified == set()


class TestProposedExtensions:
    """The three improvements §4.3.1 sketches for the qualifier tool."""

    def test_volatile_variables_auto_seeded(self):
        """Extension 1: volatile scalars become seeds, recovering the
        Listing 2 primitive the binary scan cannot see."""
        program = program_with(
            [CVar("flag", volatile=True), CVar("p", is_pointer=True)],
            [CAddrOf(ptr="p", var="flag")])
        result = refactor_to_fixpoint(program, seed_vars=set(),
                                      include_volatile=True)
        assert "flag" in result.qualified
        assert "p" in result.qualified

    def test_volatile_pointers_not_seeded(self):
        """Only the pointed-to data is synchronization state."""
        from repro.analysis.qualify import volatile_seed_vars
        program = program_with(
            [CVar("vp", is_pointer=True, volatile=True), CVar("x")], [])
        assert volatile_seed_vars(program) == set()

    def test_easy_asm_blocks_accepted(self):
        """Extension 3: _Atomic is permitted in easy-to-analyze asm."""
        program = program_with(
            [CVar("lock", atomic=True)],
            [CAsmUse("lock", easy=True)])
        assert AtomicQualifierChecker(program).check() == []

    def test_hard_asm_blocks_still_rejected(self):
        program = program_with(
            [CVar("lock", atomic=True)],
            [CAsmUse("lock", easy=False)])
        diags = AtomicQualifierChecker(program).check()
        assert diags and diags[0].kind == "asm-atomic"

    def test_easy_asm_not_unfixable_in_refactoring(self):
        program = program_with(
            [CVar("lock")],
            [CAsmUse("lock", easy=True)])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert result.unfixable == []


class TestEdgeCases:
    """Convergence and degenerate-input behavior of the fixpoint loop."""

    def test_empty_program(self):
        result = refactor_to_fixpoint(program_with([], []), seed_vars=set())
        assert result.qualified == set()
        assert result.iterations == 1
        assert result.unfixable == []

    def test_self_assignment_converges(self):
        program = program_with(
            [CVar("p", is_pointer=True)],
            [CAssign(dst="p", src="p"), CAtomicIntrinsic("p")])
        result = refactor_to_fixpoint(program, seed_vars=set())
        assert "p" in result.qualified
        assert AtomicQualifierChecker(program).check() == []

    def test_assignment_cycle_converges(self):
        # p = q; q = p with one end seeded: both ends qualify, in a
        # bounded number of rounds, despite the cyclic def-use chain.
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True),
             CVar("q", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"),
             CAssign(dst="q", src="p"),
             CAssign(dst="p", src="q")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert {"lock", "p", "q"} <= result.qualified
        assert result.iterations <= 4
        assert AtomicQualifierChecker(program).check() == []

    def test_max_iterations_exhaustion_raises(self):
        import pytest
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock")])
        with pytest.raises(RuntimeError, match="did not converge"):
            refactor_to_fixpoint(program, seed_vars={"lock"},
                                 max_iterations=0)

    def test_unfixable_reported_only_at_fixpoint(self):
        # The asm diagnostic appears once the seed propagates to the asm
        # operand; it must survive into the *final* unfixable list even
        # though early rounds still make progress elsewhere.
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True),
             CVar("q", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"),
             CAssign(dst="q", src="p"),
             CAsmUse("lock")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert len(result.unfixable) == 1
        assert result.unfixable[0].kind == "asm-atomic"
        assert {"lock", "p", "q"} <= result.qualified

    def test_volatile_seeding_composes_with_explicit_seeds(self):
        program = program_with(
            [CVar("flag", volatile=True), CVar("lock"),
             CVar("p", is_pointer=True), CVar("q", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"), CAddrOf(ptr="q", var="flag")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"},
                                      include_volatile=True)
        assert {"flag", "lock", "p", "q"} <= result.qualified

    def test_disconnected_variables_untouched(self):
        program = program_with(
            [CVar("lock"), CVar("p", is_pointer=True), CVar("bystander"),
             CVar("bp", is_pointer=True)],
            [CAddrOf(ptr="p", var="lock"),
             CAddrOf(ptr="bp", var="bystander")])
        result = refactor_to_fixpoint(program, seed_vars={"lock"})
        assert "bystander" not in result.qualified
        assert "bp" not in result.qualified
