"""Tests for the Kendo-style DMT baseline — Section 2.1's argument.

DMT makes each variant's schedule a deterministic function of logical
instruction counts.  For identical variants that is enough; diversity
perturbs the counts, each variant deterministically computes a
*different* schedule, and benign divergence returns.
"""

import pytest

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.run import run_native
from tests.guestlib import ScheduleWitnessProgram


def witness(**kwargs):
    return ScheduleWitnessProgram(workers=4, iters=40, **kwargs)


class TestDMTDeterminism:
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_identical_variants_never_diverge(self, seed, fast_costs):
        outcome = run_mvee(witness(), variants=2, agent="dmt", seed=seed,
                           costs=fast_costs, max_cycles=5e9)
        assert outcome.verdict == "clean"

    def test_schedule_is_seed_independent(self, fast_costs):
        """The witness digest must be identical across scheduler seeds —
        the deterministic-multithreading property itself."""
        digests = set()
        for seed in (0, 1, 2, 3):
            outcome = run_mvee(witness(), variants=2, agent="dmt",
                               seed=seed, costs=fast_costs,
                               max_cycles=5e9)
            assert outcome.verdict == "clean"
            digests.add(outcome.stdout)
        assert len(digests) == 1

    def test_without_dmt_schedule_varies(self, fast_costs):
        """Control: natively (no DMT), different seeds give different
        interleavings — otherwise the test above proves nothing."""
        digests = {run_native(witness(), seed=seed).stdout
                   for seed in range(6)}
        assert len(digests) > 1


class TestDMTUnderDiversity:
    def test_diversified_variants_diverge(self, fast_costs):
        """Instruction-count diversity (NOP insertion) gives each variant
        a fixed but *different* schedule — 'which does not eliminate the
        possibility of benign divergence' (Section 2.1)."""
        outcome = run_mvee(
            witness(), variants=2, agent="dmt", seed=0,
            costs=fast_costs, max_cycles=5e9,
            diversity=DiversitySpec(noise=0.30, seed=5))
        assert outcome.verdict == "divergence"

    @pytest.mark.parametrize("agent",
                             ["total_order", "partial_order",
                              "wall_of_clocks"])
    def test_paper_agents_handle_the_same_diversity(self, agent,
                                                    fast_costs):
        outcome = run_mvee(
            witness(), variants=2, agent=agent, seed=0,
            costs=fast_costs,
            diversity=DiversitySpec(noise=0.30, seed=5))
        assert outcome.verdict == "clean"
