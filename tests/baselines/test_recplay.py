"""Tests for the offline RecPlay-style record/replay baseline."""

import pytest

from repro.baselines.recplay import record_execution, replay_execution
from repro.run import run_native
from tests.guestlib import ScheduleWitnessProgram


def witness():
    return ScheduleWitnessProgram(workers=4, iters=30)


class TestRecordReplay:
    def test_replay_reproduces_output_across_seeds(self):
        log, recorded = record_execution(witness(), seed=0)
        for replay_seed in (1, 2, 3, 4):
            agent, replayed = replay_execution(witness(), log,
                                               seed=replay_seed)
            assert replayed.stdout == recorded.stdout

    def test_without_replay_seeds_differ(self):
        """Control for the test above."""
        outputs = {run_native(witness(), seed=seed).stdout
                   for seed in range(6)}
        assert len(outputs) > 1

    def test_log_contains_all_sync_ops(self):
        log, recorded = record_execution(witness(), seed=0)
        assert log.total == recorded.report.total_sync_ops
        assert set(log.per_thread) == {
            t for t in recorded.vm.threads if t != "main"}

    def test_nonconflicting_ops_replay_in_parallel(self):
        """RecPlay's selling point: operations on different variables get
        incomparable timestamps and need not stall each other."""

        class DisjointLocks(ScheduleWitnessProgram):
            static_vars = ("lock", "counter", "lock2", "counter2")

            def main(self, ctx):
                from repro.guest.sync import SpinLock
                lock_a = SpinLock(ctx.static_addr("lock"))
                lock_b = SpinLock(ctx.static_addr("lock2"))
                tid_a = yield from ctx.spawn(self.worker, lock_a)
                tid_b = yield from ctx.spawn(self.worker, lock_b)
                yield from ctx.join_all([tid_a, tid_b])
                return 0

        program = DisjointLocks(iters=20)
        log, _ = record_execution(program, seed=0)
        agent, _ = replay_execution(program, log, seed=9)
        assert agent.immediate > 0
        # Disjoint variables: the vast majority replays without stalling.
        assert agent.immediate >= agent.stalled

    def test_replay_detects_program_mismatch(self):
        """Replaying a *different* execution shape runs past the log."""
        log, _ = record_execution(witness(), seed=0)
        bigger = ScheduleWitnessProgram(workers=4, iters=60)
        with pytest.raises(RuntimeError, match="ran past the log"):
            replay_execution(bigger, log, seed=0)
