"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import VirtualKernel
from repro.perf.costs import CostModel
from repro.sched.vm import VariantVM


@pytest.fixture
def disk() -> VirtualDisk:
    return VirtualDisk()


@pytest.fixture
def kernel(disk) -> VirtualKernel:
    return VirtualKernel(disk, role="native")


@pytest.fixture
def vm(kernel) -> VariantVM:
    return VariantVM(index=0, kernel=kernel)


@pytest.fixture
def fast_costs() -> CostModel:
    """Cost model with low monitor overhead: keeps MVEE tests quick while
    preserving all ordering semantics."""
    return CostModel(monitor_syscall_overhead=2_000.0,
                     preempt_quantum=20_000.0)
