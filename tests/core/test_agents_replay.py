"""Replay-correctness tests for the three synchronization agents.

These are the paper's central claims (Sections 3-4): with any agent
injected, a set of variants executes communicating multithreaded programs
without benign divergence — under any scheduling seed, any variant count,
and full address-space diversity — while without an agent the monitor
(correctly) detects divergence.
"""

import pytest

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from tests.guestlib import (
    BarrierPhasesProgram,
    CounterProgram,
    FDRaceProgram,
    MallocStormProgram,
    MutexCounterProgram,
    ProducerConsumerProgram,
)

AGENTS = ["total_order", "partial_order", "wall_of_clocks"]


class TestBenignDivergenceWithoutAgent:
    @pytest.mark.parametrize("seed", [7, 11])
    def test_communicating_counter_diverges(self, seed, fast_costs):
        outcome = run_mvee(CounterProgram(), variants=2, agent=None,
                           seed=seed, costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert outcome.divergence is not None

    def test_fd_race_diverges_without_ordering(self, fast_costs):
        """Section 3.1's motivating example: with the Lamport syscall
        ordering disabled, threads race to open files and the FD values
        handed to equivalent threads differ across variants."""
        from repro.core.divergence import MonitorPolicy
        from repro.kernel.fs import VirtualDisk
        disk = VirtualDisk()
        FDRaceProgram.populate(disk)
        outcome = run_mvee(FDRaceProgram(workers=4), variants=2,
                           agent=None, seed=3, costs=fast_costs,
                           disk=disk,
                           policy=MonitorPolicy(order_syscalls=False))
        assert outcome.verdict == "divergence"

    def test_fd_race_fixed_by_ordering_alone(self, fast_costs):
        """With ordering on (the paper's §3.1 fix), the same program runs
        clean even without any sync agent — its threads communicate only
        through the kernel."""
        from repro.kernel.fs import VirtualDisk
        disk = VirtualDisk()
        FDRaceProgram.populate(disk)
        outcome = run_mvee(FDRaceProgram(workers=4), variants=2,
                           agent=None, seed=3, costs=fast_costs,
                           disk=disk)
        assert outcome.verdict == "clean"


class TestAgentsEliminateDivergence:
    @pytest.mark.parametrize("agent", AGENTS)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_counter_clean(self, agent, seed, fast_costs):
        outcome = run_mvee(CounterProgram(), variants=2, agent=agent,
                           seed=seed, costs=fast_costs)
        assert outcome.verdict == "clean"
        assert "total=600" in outcome.stdout

    @pytest.mark.parametrize("agent", AGENTS)
    def test_three_variants_clean(self, agent, fast_costs):
        outcome = run_mvee(CounterProgram(workers=3, iters=80),
                           variants=3, agent=agent, seed=9,
                           costs=fast_costs)
        assert outcome.verdict == "clean"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_four_variants_clean(self, agent, fast_costs):
        outcome = run_mvee(CounterProgram(workers=2, iters=50),
                           variants=4, agent=agent, seed=2,
                           costs=fast_costs)
        assert outcome.verdict == "clean"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_futex_mutex_clean(self, agent, fast_costs):
        outcome = run_mvee(MutexCounterProgram(workers=4, iters=60),
                           variants=2, agent=agent, seed=4,
                           costs=fast_costs)
        assert outcome.verdict == "clean"
        assert "total=240" in outcome.stdout

    @pytest.mark.parametrize("agent", AGENTS)
    def test_producer_consumer_clean(self, agent, fast_costs):
        outcome = run_mvee(ProducerConsumerProgram(), variants=2,
                           agent=agent, seed=8, costs=fast_costs)
        assert outcome.verdict == "clean"
        assert "consumed=80" in outcome.stdout

    @pytest.mark.parametrize("agent", AGENTS)
    def test_barrier_phases_clean(self, agent, fast_costs):
        outcome = run_mvee(BarrierPhasesProgram(), variants=2,
                           agent=agent, seed=1, costs=fast_costs)
        assert outcome.verdict == "clean"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_hidden_libc_syncops_clean(self, agent, fast_costs):
        """Malloc's internal spinlock ops must be replayed or brk-order
        diverges (Section 3.3)."""
        outcome = run_mvee(MallocStormProgram(workers=4, allocs=25),
                           variants=2, agent=agent, seed=6,
                           costs=fast_costs)
        assert outcome.verdict == "clean"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_fd_race_ordered_and_clean(self, agent, fast_costs):
        from repro.kernel.fs import VirtualDisk
        disk = VirtualDisk()
        FDRaceProgram.populate(disk)
        outcome = run_mvee(FDRaceProgram(workers=4), variants=2,
                           agent=agent, seed=3, costs=fast_costs,
                           disk=disk)
        assert outcome.verdict == "clean"


class TestDiversitySupport:
    @pytest.mark.parametrize("agent", AGENTS)
    def test_aslr_plus_dcl_clean(self, agent, fast_costs):
        """Section 5.1's correctness experiment: ASLR + disjoint code
        layouts, no divergence under any agent."""
        outcome = run_mvee(
            CounterProgram(workers=4, iters=60), variants=3, agent=agent,
            seed=12, costs=fast_costs,
            diversity=DiversitySpec(aslr=True, dcl=True, seed=99))
        assert outcome.verdict == "clean"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_noise_diversity_clean(self, agent, fast_costs):
        """NOP-insertion-style timing diversity does not break replay —
        the agents do not depend on instruction counts (unlike DMT)."""
        outcome = run_mvee(
            MutexCounterProgram(workers=3, iters=40), variants=2,
            agent=agent, seed=13, costs=fast_costs,
            diversity=DiversitySpec(noise=0.25, seed=3))
        assert outcome.verdict == "clean"

    def test_allocator_diversity_breaks_replay(self, fast_costs):
        """Section 4.5.1: variants with different allocator behaviour are
        unsupported — the run must NOT be clean (the extra brk calls make
        the variants' syscall streams differ, and replay may also wedge)."""
        outcome = run_mvee(
            MallocStormProgram(workers=2, allocs=20), variants=2,
            agent="wall_of_clocks", seed=1, costs=fast_costs,
            max_cycles=2e9,
            diversity=DiversitySpec(allocator_padding=32_768))
        assert outcome.verdict != "clean"


class TestReplayEquivalence:
    @pytest.mark.parametrize("agent", AGENTS)
    def test_syscall_traces_identical_across_variants(self, agent,
                                                      fast_costs):
        from repro.core.mvee import MVEE
        mvee = MVEE(CounterProgram(workers=3, iters=50), variants=2,
                    agent=agent, seed=21, costs=fast_costs,
                    record_trace=True)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        master = outcome.vms[0].per_thread_syscall_trace()
        for slave in outcome.vms[1:]:
            assert slave.per_thread_syscall_trace() == master

    @pytest.mark.parametrize("agent", AGENTS)
    def test_sync_op_results_match(self, agent, fast_costs):
        """CAS/XCHG results must replicate exactly (same retry patterns)."""
        from repro.core.mvee import MVEE
        mvee = MVEE(MutexCounterProgram(workers=3, iters=30), variants=2,
                    agent=agent, seed=17, costs=fast_costs,
                    record_sync_trace=True)
        outcome = mvee.run()
        assert outcome.verdict == "clean"

        def per_thread(vm):
            grouped = {}
            for entry in vm.sync_trace:
                grouped.setdefault(entry.thread, []).append(
                    (entry.name, entry.result))
            return grouped

        assert per_thread(outcome.vms[0]) == per_thread(outcome.vms[1])

    def test_agent_stats_accumulate(self, fast_costs):
        outcome = run_mvee(CounterProgram(workers=2, iters=40),
                           variants=3, agent="wall_of_clocks", seed=3,
                           costs=fast_costs)
        stats = outcome.agent_shared.stats
        assert stats.recorded > 0
        assert stats.replayed == 2 * stats.recorded  # two slave variants
