"""Ring-buffer backpressure: bounded sync buffers pace the master.

The paper's sync buffers are rings in shared memory; when the slowest
slave lags a full capacity behind, the master's recorder must stall until
consumption catches up.  Replay must stay correct at any capacity — the
bound only trades master progress for memory.
"""

import pytest

from repro.core.mvee import run_mvee
from tests.guestlib import CounterProgram, MutexCounterProgram

AGENTS = ["total_order", "partial_order", "wall_of_clocks"]


class TestBackpressure:
    @pytest.mark.parametrize("agent", AGENTS)
    @pytest.mark.parametrize("capacity", [2, 8, 1 << 16])
    def test_replay_correct_at_any_capacity(self, agent, capacity,
                                            fast_costs):
        outcome = run_mvee(CounterProgram(workers=3, iters=60),
                           variants=2, agent=agent, seed=5,
                           costs=fast_costs,
                           agent_options={"buffer_capacity": capacity})
        assert outcome.verdict == "clean"
        assert "total=180" in outcome.stdout

    @pytest.mark.parametrize("agent", AGENTS)
    def test_small_buffers_stall_the_producer(self, agent, fast_costs):
        def producer_waits(capacity):
            outcome = run_mvee(CounterProgram(workers=4, iters=60,
                                              chatty=False),
                               variants=2, agent=agent, seed=3,
                               costs=fast_costs,
                               agent_options={
                                   "buffer_capacity": capacity})
            assert outcome.verdict == "clean"
            return outcome.agent_shared.stats.producer_waits

        assert producer_waits(2) > producer_waits(1 << 16)

    @pytest.mark.parametrize("agent", AGENTS)
    def test_futex_workload_with_tiny_buffers(self, agent, fast_costs):
        """Backpressure must compose with the blocking-call streams."""
        outcome = run_mvee(MutexCounterProgram(workers=3, iters=30),
                           variants=2, agent=agent, seed=7,
                           costs=fast_costs,
                           agent_options={"buffer_capacity": 3})
        assert outcome.verdict == "clean"
        assert "total=90" in outcome.stdout

    def test_three_variants_slowest_consumer_paces(self, fast_costs):
        """With 3 variants the master is paced by the *slowest* slave."""
        outcome = run_mvee(CounterProgram(workers=2, iters=40,
                                          chatty=False),
                           variants=3, agent="wall_of_clocks", seed=2,
                           costs=fast_costs,
                           agent_options={"buffer_capacity": 4})
        assert outcome.verdict == "clean"
        stats = outcome.agent_shared.stats
        assert stats.replayed == 2 * stats.recorded
