"""Unit tests for sync buffers and the wall-of-clocks primitives."""


from repro.core.agents.clocks import ClockWall, clock_for_address
from repro.core.buffers import (
    ConsumptionWindow,
    MultiProducerLog,
    SPSCBuffer,
    SyncRecord,
)


def record(thread="t", addr=0x1000, site="s"):
    return SyncRecord(thread=thread, addr=addr, site=site)


class TestMultiProducerLog:
    def test_append_returns_positions(self):
        log = MultiProducerLog()
        assert log.append(record("a")) == 0
        assert log.append(record("b")) == 1
        assert len(log) == 2

    def test_per_thread_positions(self):
        log = MultiProducerLog()
        log.append(record("a"))
        log.append(record("b"))
        log.append(record("a"))
        assert log.thread_entry_position("a", 0) == 0
        assert log.thread_entry_position("a", 1) == 2
        assert log.thread_entry_position("a", 2) is None
        assert log.thread_entry_position("c", 0) is None
        assert log.thread_entry_count("a") == 2


class TestConsumptionWindow:
    def test_frontier_advances_over_contiguous(self):
        window = ConsumptionWindow()
        window.mark_consumed(0, "a")
        assert window.frontier == 1
        window.mark_consumed(2, "b")
        assert window.frontier == 1
        window.mark_consumed(1, "a")
        assert window.frontier == 3
        assert window.window_size() == 0

    def test_is_consumed(self):
        window = ConsumptionWindow()
        window.mark_consumed(1, "a")
        assert window.is_consumed(1)
        assert not window.is_consumed(0)

    def test_per_thread_counts(self):
        window = ConsumptionWindow()
        window.mark_consumed(0, "a")
        window.mark_consumed(1, "a")
        assert window.next_index_for("a") == 2
        assert window.next_index_for("b") == 0


class TestSPSCBuffer:
    def test_independent_consumers(self):
        buffer = SPSCBuffer("m1")
        buffer.produce(record("m1", 1))
        buffer.produce(record("m1", 2))
        assert buffer.peek(1).addr == 1
        buffer.advance(1)
        assert buffer.peek(1).addr == 2
        assert buffer.peek(2).addr == 1  # consumer 2 untouched

    def test_peek_drained_returns_none(self):
        buffer = SPSCBuffer("m1")
        assert buffer.peek(1) is None
        buffer.produce(record())
        buffer.advance(1)
        assert buffer.peek(1) is None

    def test_counters(self):
        buffer = SPSCBuffer("m1")
        buffer.produce(record())
        assert buffer.produced() == 1
        assert buffer.consumed(1) == 0


class TestClockHash:
    def test_deterministic(self):
        assert clock_for_address(0x1234) == clock_for_address(0x1234)

    def test_adjacent_words_share_granule_clock(self):
        """Section 4.5: two 32-bit variables in one 64-bit granule must
        map to the same clock (CMPXCHG8B could touch both)."""
        base = 0x7F00_0000
        assert clock_for_address(base) == clock_for_address(base + 4)

    def test_different_granules_usually_differ(self):
        base = 0x7F00_0000
        clocks = {clock_for_address(base + 8 * k) for k in range(64)}
        assert len(clocks) > 32  # good spread

    def test_range_respected(self):
        for addr in range(0x1000, 0x1400, 8):
            assert 0 <= clock_for_address(addr, 16) < 16


class TestClockWall:
    def test_tick_returns_pre_increment(self):
        wall = ClockWall(8)
        assert wall.tick(3) == 0
        assert wall.tick(3) == 1
        assert wall.read(3) == 2
        assert wall.read(0) == 0

    def test_len(self):
        assert len(ClockWall(32)) == 32
