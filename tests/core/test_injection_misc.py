"""Injection layer, agent registry, and assorted MVEE regressions."""

import pytest

from repro.core.agents import AGENT_REGISTRY
from repro.core.agents.base import make_agents
from repro.core.injection import (
    instrument_all,
    instrument_excluding,
    instrument_sites,
    inject_agents,
)
from repro.core.mvee import MVEE, run_mvee
from repro.diversity.spec import DiversitySpec
from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import VirtualKernel
from repro.sched.vm import VariantVM
from tests.guestlib import MallocStormProgram


def make_vms(count):
    return [VariantVM(index=i,
                      kernel=VirtualKernel(VirtualDisk(),
                                           variant_index=i))
            for i in range(count)]


class TestInstrumentationPredicates:
    def test_instrument_all(self):
        assert instrument_all("anything.at.all")

    def test_instrument_sites(self):
        predicate = instrument_sites({"a.x", "b.y"})
        assert predicate("a.x") and not predicate("c.z")

    def test_instrument_excluding(self):
        predicate = instrument_excluding(("nginx.",))
        assert predicate("libpthread.mutex.lock.cmpxchg")
        assert not predicate("nginx.spinlock.lock.cmpxchg")


class TestInjection:
    def test_none_agent_clears_agents(self):
        vms = make_vms(2)
        shared = inject_agents(vms, None)
        assert shared is None
        assert all(vm.agent is None for vm in vms)

    def test_agents_share_state(self):
        vms = make_vms(3)
        shared = inject_agents(vms, "wall_of_clocks")
        assert all(vm.agent.shared is shared for vm in vms)
        assert vms[0].agent.is_master
        assert not vms[1].agent.is_master

    def test_unknown_agent_rejected(self):
        with pytest.raises(ValueError):
            make_agents("flux_capacitor", 2)

    def test_registry_contains_paper_agents(self):
        assert {"total_order", "partial_order",
                "wall_of_clocks"} <= set(AGENT_REGISTRY)

    def test_dmt_lazily_registered(self):
        shared, agents = make_agents("dmt", 2)
        assert agents[0].name == "dmt"

    def test_agent_options_forwarded(self):
        shared, _ = make_agents("wall_of_clocks", 2, n_clocks=32)
        assert shared.n_clocks == 32


class TestMVEEValidation:
    def test_rejects_single_variant(self):
        from tests.guestlib import CounterProgram
        with pytest.raises(ValueError):
            MVEE(CounterProgram(), variants=1)

    def test_rejects_unknown_monitor_kind(self):
        from tests.guestlib import CounterProgram
        with pytest.raises(ValueError):
            MVEE(CounterProgram(), variants=2, monitor_kind="psychic")


class TestRegressions:
    def test_malloc_under_aslr_is_clean(self, fast_costs):
        """brk carries an *address argument*; without masking it, the
        diversified variants' identical allocations would look like an
        argument mismatch (regression for the Figure 1 bench bug)."""
        outcome = run_mvee(MallocStormProgram(workers=3, allocs=20),
                           variants=2, agent="wall_of_clocks", seed=4,
                           costs=fast_costs,
                           diversity=DiversitySpec(aslr=True, seed=8))
        assert outcome.verdict == "clean"

    def test_mmap_munmap_under_aslr_is_clean(self, fast_costs):
        from repro.guest.program import GuestProgram

        class MapLoop(GuestProgram):
            def main(self, ctx):
                for _ in range(5):
                    addr = yield from ctx.syscall("mmap", 8192)
                    yield from ctx.compute(500)
                    yield from ctx.syscall("munmap", addr)

        outcome = run_mvee(MapLoop(), variants=2, agent=None, seed=1,
                           costs=fast_costs,
                           diversity=DiversitySpec(aslr=True, seed=8))
        assert outcome.verdict == "clean"
