"""Monitor-specific behaviour: replication, ordering, policies, roles."""

import pytest

from repro.core.divergence import (
    POLICY_NO_LOCKSTEP,
    DivergenceKind,
    MonitorPolicy,
)
from repro.core.mvee import MVEE, run_mvee
from repro.guest.program import GuestProgram
from repro.kernel.fs import VirtualDisk
from tests.guestlib import CounterProgram

AGENTS = ["total_order", "partial_order", "wall_of_clocks"]


class TestReplication:
    def test_input_replication_reads_identical(self, fast_costs):
        class Reader(GuestProgram):
            def main(self, ctx):
                fd = yield from ctx.open("/input.txt")
                data = yield from ctx.read(fd, 100)
                yield from ctx.close(fd)
                yield from ctx.printf(f"read:{data.decode()}\n")
                return data

        disk = VirtualDisk()
        disk.add_file("/input.txt", b"shared input")
        outcome = run_mvee(Reader(), variants=3, agent=None, seed=1,
                           costs=fast_costs, disk=disk)
        assert outcome.verdict == "clean"
        for vm in outcome.vms:
            assert vm.threads["main"].result == b"shared input"

    def test_output_performed_once(self, fast_costs):
        class Writer(GuestProgram):
            def main(self, ctx):
                yield from ctx.printf("exactly once\n")

        outcome = run_mvee(Writer(), variants=4, agent=None, seed=1,
                           costs=fast_costs)
        assert outcome.verdict == "clean"
        assert outcome.stdout == "exactly once\n"

    def test_file_write_applied_once(self, fast_costs):
        class Writer(GuestProgram):
            def main(self, ctx):
                fd = yield from ctx.open("/out.txt", "w")
                yield from ctx.write(fd, b"ABC")
                yield from ctx.close(fd)

        disk = VirtualDisk()
        outcome = run_mvee(Writer(), variants=3, agent=None, seed=0,
                           costs=fast_costs, disk=disk)
        assert outcome.verdict == "clean"
        assert bytes(disk.lookup("/out.txt").data) == b"ABC"

    def test_gettimeofday_replicated_equal(self, fast_costs):
        class Timer(GuestProgram):
            def main(self, ctx):
                seconds, microseconds = yield from ctx.gettimeofday()
                return (seconds, microseconds)

        mvee = MVEE(Timer(), variants=3, agent=None, seed=1,
                    costs=fast_costs)
        outcome = mvee.run()
        results = {vm.threads["main"].result for vm in outcome.vms}
        assert len(results) == 1  # covert-channel precondition (§5.4)

    def test_getpid_hides_multiple_processes(self, fast_costs):
        class Pid(GuestProgram):
            def main(self, ctx):
                pid = yield from ctx.syscall("getpid")
                return pid

        outcome = run_mvee(Pid(), variants=2, agent=None, seed=0,
                           costs=fast_costs)
        pids = {vm.threads["main"].result for vm in outcome.vms}
        assert len(pids) == 1


class TestSelfAwareness:
    def test_mvee_get_role_returns_variant_index(self, fast_costs):
        class Role(GuestProgram):
            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                return role

        outcome = run_mvee(Role(), variants=3, agent=None, seed=0,
                           costs=fast_costs)
        assert [vm.threads["main"].result
                for vm in outcome.vms] == [0, 1, 2]

    def test_mvee_get_role_is_enosys_natively(self):
        from repro.run import run_native

        class Role(GuestProgram):
            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                return role

        assert run_native(Role(), seed=0).vm.threads["main"].result == -38


class TestSyscallOrdering:
    def test_master_order_replayed_in_slaves(self, fast_costs):
        """Ordered calls follow the master's interleaving: FD numbers for
        racing opens must match across variants (checked by the monitor's
        result comparison, so a clean verdict is the assertion)."""
        from tests.guestlib import FDRaceProgram
        disk = VirtualDisk()
        FDRaceProgram.populate(disk)
        for seed in (0, 1, 2):
            outcome = run_mvee(FDRaceProgram(workers=3), variants=2,
                               agent=None, seed=seed, costs=fast_costs,
                               disk=disk)
            assert outcome.verdict == "clean"

    def test_ordering_log_accumulates(self, fast_costs):
        from tests.guestlib import FDRaceProgram
        disk = VirtualDisk()
        FDRaceProgram.populate(disk)
        mvee = MVEE(FDRaceProgram(workers=2), variants=2, agent=None,
                    seed=0, costs=fast_costs, disk=disk)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        log = mvee.monitor.orderer.master_log
        assert len(log) > 0
        assert all(thread.startswith("main") for thread in log)


class TestPolicies:
    def test_no_lockstep_tolerates_divergence(self, fast_costs):
        """Under POLICY_NO_LOCKSTEP the benign divergence goes undetected —
        the dangerous configuration Section 2 warns about."""
        outcome = run_mvee(CounterProgram(workers=4, iters=100),
                           variants=2, agent=None, seed=7,
                           costs=fast_costs, policy=POLICY_NO_LOCKSTEP)
        assert outcome.verdict == "clean"  # silently wrong, by design

    def test_sensitive_only_still_detects_write_divergence(self,
                                                           fast_costs):
        outcome = run_mvee(CounterProgram(workers=4, iters=100),
                           variants=2, agent=None, seed=7,
                           costs=fast_costs,
                           policy=MonitorPolicy(lockstep="sensitive"))
        assert outcome.verdict == "divergence"

    @pytest.mark.parametrize("agent", AGENTS)
    def test_all_policies_clean_with_agent(self, agent, fast_costs):
        for policy in (MonitorPolicy(lockstep="all"),
                       MonitorPolicy(lockstep="sensitive"),
                       POLICY_NO_LOCKSTEP):
            outcome = run_mvee(CounterProgram(workers=3, iters=50),
                               variants=2, agent=agent, seed=5,
                               costs=fast_costs, policy=policy)
            assert outcome.verdict == "clean"


class TestThreadExitDivergence:
    def test_early_exit_in_one_variant_detected(self, fast_costs):
        class EarlyExit(GuestProgram):
            static_vars = ()

            def main(self, ctx):
                tid = yield from ctx.spawn(self.worker)
                yield from ctx.join(tid)

            def worker(self, ctx):
                role = yield from ctx.mvee_get_role()
                steps = 3 if role == 0 else 6
                for step in range(steps):
                    yield from ctx.printf(f"step {step}\n")

        outcome = run_mvee(EarlyExit(), variants=2, agent=None, seed=0,
                           costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind is DivergenceKind.THREAD_EXIT_MISMATCH


class TestFaultDivergence:
    def test_variant_fault_is_divergence(self, fast_costs):
        class FaultOne(GuestProgram):
            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                yield from ctx.compute(1000)
                if role == 1:
                    ctx.mem_load(0xDEAD_BEEF)  # slave-only crash
                yield from ctx.printf("survived\n")

        outcome = run_mvee(FaultOne(), variants=2, agent=None, seed=0,
                           costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind is DivergenceKind.VARIANT_FAULT


class TestPolicyOverrides:
    """ReMon-style per-deployment syscall classification overrides."""

    def test_never_lockstep_tolerates_specific_divergence(self,
                                                          fast_costs):
        """Exempting 'write' from lockstep makes the counter program's
        benign divergence invisible — outputs differ but are never
        compared (each variant's writes deduplicate via replication)."""
        from repro.core.divergence import MonitorPolicy
        outcome = run_mvee(CounterProgram(workers=4, iters=120),
                           variants=2, agent=None, seed=7,
                           costs=fast_costs,
                           policy=MonitorPolicy(
                               never_lockstep=frozenset({"write"})))
        assert outcome.verdict == "clean"

    def test_extra_sensitive_widens_sensitive_policy(self, fast_costs):
        """'read' is not statically sensitive; adding it via
        extra_sensitive makes the sensitive-only policy rendezvous on
        it (observable through a role-dependent read divergence)."""
        from repro.core.divergence import MonitorPolicy
        from repro.guest.program import GuestProgram
        from repro.kernel.fs import VirtualDisk

        class RoleReads(GuestProgram):
            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                fd = yield from ctx.open("/data.txt")
                count = 4 if role == 0 else 8  # divergent read args
                yield from ctx.read(fd, count)
                yield from ctx.close(fd)

        disk = VirtualDisk()
        disk.add_file("/data.txt", b"0123456789abcdef")
        tolerant = run_mvee(RoleReads(), variants=2, agent=None, seed=1,
                            costs=fast_costs, disk=disk,
                            policy=MonitorPolicy(lockstep="sensitive"))
        assert tolerant.verdict == "clean"
        disk2 = VirtualDisk()
        disk2.add_file("/data.txt", b"0123456789abcdef")
        strict = run_mvee(RoleReads(), variants=2, agent=None, seed=1,
                          costs=fast_costs, disk=disk2,
                          policy=MonitorPolicy(
                              lockstep="sensitive",
                              extra_sensitive=frozenset({"read"})))
        assert strict.verdict == "divergence"
