"""Tests for the VARAN-style relaxed monitor baseline (Section 6)."""

import pytest

from repro.core.divergence import DivergenceKind
from repro.core.mvee import MVEE, run_mvee
from repro.guest.program import GuestProgram
from repro.kernel.fs import VirtualDisk
from tests.guestlib import CounterProgram, LooselyCoupledProgram


class TestRelaxedOnLooselyCoupled:
    def test_clean_without_any_agent(self, fast_costs):
        """VARAN's sweet spot: threads that do not communicate."""
        outcome = run_mvee(LooselyCoupledProgram(workers=4, steps=15),
                           variants=2, agent=None, seed=5,
                           monitor_kind="relaxed", costs=fast_costs)
        assert outcome.verdict == "clean"

    def test_leader_runs_ahead(self, fast_costs):
        mvee = MVEE(LooselyCoupledProgram(workers=3, steps=20),
                    variants=2, agent=None, seed=6,
                    monitor_kind="relaxed", costs=fast_costs)
        # Make the follower slower (NOP-insertion-style diversity): a
        # lockstep monitor would drag the leader down; VARAN must not.
        mvee.vms[1].compute_scale = 3.0
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        assert mvee.monitor.max_lead >= 1, (
            "the leader should get ahead of followers (no lockstep)")

    def test_io_replicated_to_followers(self, fast_costs):
        class Reader(GuestProgram):
            def main(self, ctx):
                fd = yield from ctx.open("/in.txt")
                data = yield from ctx.read(fd, 10)
                return data

        disk = VirtualDisk()
        disk.add_file("/in.txt", b"0123456789")
        outcome = run_mvee(Reader(), variants=2, agent=None, seed=0,
                           monitor_kind="relaxed", costs=fast_costs,
                           disk=disk)
        assert outcome.verdict == "clean"
        assert all(vm.threads["main"].result == b"0123456789"
                   for vm in outcome.vms)


class TestRelaxedOnCommunicatingThreads:
    def test_diverges_without_agent(self, fast_costs):
        """The paper's criticism of VARAN: explicit inter-thread sync via
        shared memory breaks the per-thread sequence equality."""
        outcome = run_mvee(CounterProgram(workers=4, iters=120),
                           variants=2, agent=None, seed=7,
                           monitor_kind="relaxed", costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind is DivergenceKind.SEQUENCE_MISMATCH

    @pytest.mark.parametrize("agent",
                             ["total_order", "partial_order",
                              "wall_of_clocks"])
    def test_clean_with_paper_agents(self, agent, fast_costs):
        """Adding this paper's sync agents fixes the relaxed monitor too."""
        outcome = run_mvee(CounterProgram(workers=4, iters=80),
                           variants=2, agent=agent, seed=7,
                           monitor_kind="relaxed", costs=fast_costs)
        assert outcome.verdict == "clean"


class TestFollowerShortExit:
    def test_follower_exiting_early_is_sequence_mismatch(self,
                                                         fast_costs):
        """A follower whose thread makes fewer calls than the leader
        recorded deviated from the leader's sequence."""
        from repro.guest.program import GuestProgram

        class RoleShort(GuestProgram):
            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                steps = 6 if role == 0 else 2
                for step in range(steps):
                    yield from ctx.printf(f"s{step}\n")

        outcome = run_mvee(RoleShort(), variants=2, agent=None, seed=1,
                           monitor_kind="relaxed", costs=fast_costs,
                           max_cycles=1e9)
        assert outcome.verdict != "clean"
