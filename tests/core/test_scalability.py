"""Beyond the paper's 4 variants: the mechanisms scale structurally."""

import pytest

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from tests.guestlib import CounterProgram, MutexCounterProgram


class TestManyVariants:
    @pytest.mark.parametrize("variants", [5, 6])
    def test_woc_clean_beyond_paper_counts(self, variants, fast_costs):
        outcome = run_mvee(CounterProgram(workers=2, iters=40,
                                          chatty=False),
                           variants=variants, agent="wall_of_clocks",
                           seed=3, costs=fast_costs,
                           diversity=DiversitySpec(aslr=True, seed=5))
        assert outcome.verdict == "clean"
        stats = outcome.agent_shared.stats
        assert stats.replayed == (variants - 1) * stats.recorded

    def test_slowdown_grows_with_variants(self, fast_costs):
        from repro.run import run_native
        program_args = dict(workers=2, iters=60, chatty=False)
        native = run_native(CounterProgram(**program_args), seed=3,
                            costs=fast_costs)
        slowdowns = []
        for variants in (2, 4, 6):
            outcome = run_mvee(CounterProgram(**program_args),
                               variants=variants, agent="wall_of_clocks",
                               seed=3, costs=fast_costs)
            slowdowns.append(outcome.cycles / native.report.cycles)
        assert slowdowns[0] <= slowdowns[-1] * 1.1

    def test_relaxed_monitor_with_many_followers(self, fast_costs):
        from tests.guestlib import LooselyCoupledProgram
        outcome = run_mvee(LooselyCoupledProgram(workers=3, steps=10),
                           variants=5, agent=None,
                           monitor_kind="relaxed", costs=fast_costs)
        assert outcome.verdict == "clean"


class TestRelaxedWithDiversityAndAgents:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_relaxed_plus_agent_plus_aslr(self, agent, fast_costs):
        """The agents are monitor-agnostic: the VARAN-style monitor plus
        any agent handles communicating threads under ASLR."""
        outcome = run_mvee(MutexCounterProgram(workers=3, iters=40),
                           variants=3, agent=agent,
                           monitor_kind="relaxed", seed=5,
                           costs=fast_costs,
                           diversity=DiversitySpec(aslr=True, seed=9))
        assert outcome.verdict == "clean"
        assert "total=120" in outcome.stdout

    def test_relaxed_stream_replication_of_futex(self, fast_costs):
        """Blocking-call results flow through the relaxed monitor's ring
        too (spec.stream_replicated under VARAN)."""
        from repro.core.mvee import MVEE
        mvee = MVEE(MutexCounterProgram(workers=3, iters=30), variants=2,
                    agent="wall_of_clocks", monitor_kind="relaxed",
                    seed=5, costs=fast_costs)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        assert outcome.vms[1].kernel.futexes.all_waiting_threads() == []
