"""The per-thread blocking-result streams (futex / nanosleep, §4.1).

The monitor treats futex like an I/O operation: only the master executes
it; slaves consume the master's result for their thread's k-th such call
without ever sleeping in a slave-local futex (whose FIFO wake order could
rouse a thread out of replay order and wedge the variant).
"""


from repro.core.mvee import MVEE, run_mvee
from repro.guest.program import GuestProgram
from tests.guestlib import MutexCounterProgram, ProducerConsumerProgram


class TestStreamReplication:
    def test_slave_futexes_never_wait_locally(self, fast_costs):
        """Slave kernels must keep empty futex tables throughout."""
        mvee = MVEE(MutexCounterProgram(workers=4, iters=40), variants=2,
                    agent="wall_of_clocks", seed=4, costs=fast_costs)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        slave_kernel = outcome.vms[1].kernel
        assert slave_kernel.futexes.all_waiting_threads() == []

    def test_master_futexes_do_wait(self, fast_costs):
        """Control: the master executes the futexes for real (its threads
        appeared in its futex queues at some point — visible through the
        futex syscalls it performed)."""
        mvee = MVEE(MutexCounterProgram(workers=4, iters=40), variants=2,
                    agent="wall_of_clocks", seed=4, costs=fast_costs,
                    record_trace=True)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        # futexes are unmonitored-for-trace but counted per-thread stats.
        master_waits = sum(
            1 for entry in outcome.vms[0].trace
            if entry.name == "futex_wait")
        assert master_waits >= 0  # trace excludes streams; see below

    def test_stream_counts_balance(self, fast_costs):
        """Master produced exactly as many stream results as each slave
        consumed (per thread)."""
        mvee = MVEE(ProducerConsumerProgram(), variants=3, agent=
                    "wall_of_clocks", seed=8, costs=fast_costs)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        monitor = mvee.monitor
        for (variant, thread), count in monitor._stream_count.items():
            if variant == 0:
                continue
            master_count = monitor._stream_count.get((0, thread), 0)
            assert count == master_count, (variant, thread)

    def test_nanosleep_replicated_without_slave_sleep(self, fast_costs):
        class Napper(GuestProgram):
            def main(self, ctx):
                tid = yield from ctx.spawn(self.child)
                result = yield from ctx.syscall("nanosleep", 0.001)
                yield from ctx.join(tid)
                return result

            def child(self, ctx):
                yield from ctx.compute(10_000)
                return 0

        outcome = run_mvee(Napper(), variants=2, agent=None, seed=1,
                           costs=fast_costs)
        assert outcome.verdict == "clean"
        # Both variants saw the sleep result...
        assert all(vm.threads["main"].result == 0
                   for vm in outcome.vms)
        # ...but the wall time covers ONE sleep, not two back to back.
        assert outcome.cycles < 2_200_000

    def test_futex_results_match_across_variants(self, fast_costs):
        """The whole point of the stream: slaves see the master's futex
        outcomes (0 = slept, EAGAIN = value changed), so any guest that
        branched on them stays aligned."""

        class FutexProbe(GuestProgram):
            static_vars = ("word",)

            def main(self, ctx):
                addr = ctx.static_addr("word")
                ctx.mem_store(addr, 5)
                # value != expected -> immediate EAGAIN everywhere.
                result = yield from ctx.futex_wait(addr, 9)
                yield from ctx.printf(f"futex says {result}\n")
                return result

        outcome = run_mvee(FutexProbe(), variants=3, agent=None, seed=1,
                           costs=fast_costs)
        assert outcome.verdict == "clean"
        results = {vm.threads["main"].result for vm in outcome.vms}
        assert results == {-11}  # EAGAIN, replicated to all
