"""Direct unit tests of the Lamport syscall orderer (§4.1)."""

import pytest

from repro.core.syscall_order import SyscallOrderer
from repro.sched.interceptor import Proceed, Wait


class FakeWake:
    def __init__(self):
        self.keys = []

    def __call__(self, key):
        self.keys.append(key)


@pytest.fixture
def orderer():
    wake = FakeWake()
    orderer = SyscallOrderer(n_variants=2, wake=wake)
    orderer._test_wake = wake
    return orderer


class TestMasterCriticalSection:
    def test_master_enters_freely(self, orderer):
        assert isinstance(orderer.check(0, "main", "v0:main"), Proceed)

    def test_second_master_thread_waits(self, orderer):
        orderer.check(0, "main", "v0:main")
        outcome = orderer.check(0, "main/1", "v0:main/1")
        assert isinstance(outcome, Wait)
        assert outcome.key == ("order_cs",)

    def test_reentrant_for_same_thread(self, orderer):
        orderer.check(0, "main", "v0:main")
        assert isinstance(orderer.check(0, "main", "v0:main"), Proceed)

    def test_finish_releases_and_wakes(self, orderer):
        orderer.check(0, "main", "v0:main")
        orderer.finish(0, "main", "v0:main")
        assert ("order_cs",) in orderer._test_wake.keys
        assert isinstance(orderer.check(0, "main/1", "v0:main/1"),
                          Proceed)


class TestSlaveOrdering:
    def _master_sequence(self, orderer, threads):
        for thread in threads:
            assert isinstance(orderer.check(0, thread, f"v0:{thread}"),
                              Proceed)
            orderer.finish(0, thread, f"v0:{thread}")

    def test_slave_waits_for_unrecorded_call(self, orderer):
        outcome = orderer.check(1, "main", "v1:main")
        assert isinstance(outcome, Wait)
        assert outcome.key == ("order_log", 1)

    def test_slave_follows_master_interleaving(self, orderer):
        # Master order: A, B, A.
        self._master_sequence(orderer, ["A", "B", "A"])
        # Slave: B arrives first but its stamp is position 1 -> waits.
        outcome = orderer.check(1, "B", "v1:B")
        assert isinstance(outcome, Wait)
        assert outcome.key == ("order_clock", 1)
        # A's first call has stamp 0 -> may proceed.
        assert isinstance(orderer.check(1, "A", "v1:A"), Proceed)
        orderer.finish(1, "A", "v1:A")
        assert ("order_clock", 1) in orderer._test_wake.keys
        # Now B's turn (stamp 1), then A again (stamp 2).
        assert isinstance(orderer.check(1, "B", "v1:B"), Proceed)
        orderer.finish(1, "B", "v1:B")
        assert isinstance(orderer.check(1, "A", "v1:A"), Proceed)

    def test_master_log_property(self, orderer):
        self._master_sequence(orderer, ["A", "B"])
        assert orderer.master_log == ["A", "B"]

    def test_finish_wakes_slave_log_waiters(self, orderer):
        orderer.check(0, "A", "v0:A")
        orderer.finish(0, "A", "v0:A")
        assert ("order_log", 1) in orderer._test_wake.keys
