"""Listing 3's weak-symbol semantics: instrumentation without a loaded
agent is a no-op.

"This way, the program would call the agent, if it is running, or
perform a no-op, if the agent is not running."  In the simulation:
``vm.instrument`` marks a site as instrumented, but with ``vm.agent is
None`` the wrappers never run and the program behaves (and costs)
exactly like the bare binary.
"""


from tests.guestlib import CounterProgram


class TestWeakSymbols:
    def _run(self, instrument):
        from repro.guest.program import build_context
        from repro.kernel.fs import VirtualDisk
        from repro.kernel.kernel import VirtualKernel
        from repro.sched.machine import Machine
        from repro.sched.vm import VariantVM

        program = CounterProgram(workers=3, iters=40, chatty=False)
        kernel = VirtualKernel(VirtualDisk(), role="native")
        vm = VariantVM(index=0, kernel=kernel, instrument=instrument)
        machine = Machine(cores=16, seed=7)
        machine.add_vm(vm)
        ctx = build_context(vm, program)
        machine.add_thread(vm, "main", program.main(ctx))
        report = machine.run()
        return report, vm

    def test_instrumented_without_agent_is_free(self):
        bare_report, _ = self._run(instrument=None)
        weak_report, weak_vm = self._run(instrument=lambda site: True)
        assert weak_vm.agent is None
        # Identical behaviour and identical cycle count: with the same
        # seed, the no-op wrappers must not even perturb timing.
        assert weak_report.cycles == bare_report.cycles
        assert weak_report.total_sync_ops == bare_report.total_sync_ops

    def test_agent_wrapper_costs_appear_only_with_agent(self):
        """Control: injecting a recording agent does add the wrapper
        cost, so the equality above is meaningful."""
        from repro.baselines.recplay import RecordingAgent, SyncLog

        bare_report, _ = self._run(instrument=None)

        from repro.guest.program import build_context
        from repro.kernel.fs import VirtualDisk
        from repro.kernel.kernel import VirtualKernel
        from repro.sched.machine import Machine
        from repro.sched.vm import VariantVM

        program = CounterProgram(workers=3, iters=40, chatty=False)
        kernel = VirtualKernel(VirtualDisk(), role="native")
        vm = VariantVM(index=0, kernel=kernel,
                       instrument=lambda site: True)
        vm.agent = RecordingAgent(SyncLog())
        machine = Machine(cores=16, seed=7)
        machine.add_vm(vm)
        ctx = build_context(vm, program)
        machine.add_thread(vm, "main", program.main(ctx))
        report = machine.run()
        assert report.cycles > bare_report.cycles
