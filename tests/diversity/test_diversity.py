"""Tests for the diversity transforms (ASLR, DCL, noise, allocator)."""


from repro.diversity.aslr import aslr_layout
from repro.diversity.dcl import code_regions_disjoint, dcl_layouts
from repro.diversity.spec import DiversitySpec, apply_diversity, layouts_for
from repro.kernel.vmem import PAGE_SIZE, LayoutBases
from repro.sched.vm import VariantVM
from repro.kernel.kernel import VirtualKernel
from repro.kernel.fs import VirtualDisk


def make_vm(index):
    return VariantVM(index=index,
                     kernel=VirtualKernel(VirtualDisk(),
                                          variant_index=index))


class TestASLR:
    def test_layouts_differ_per_variant(self):
        first = aslr_layout(0, seed=1)
        second = aslr_layout(1, seed=1)
        assert first.static_base != second.static_base
        assert first.heap_base != second.heap_base

    def test_deterministic_per_seed(self):
        assert aslr_layout(2, seed=9) == aslr_layout(2, seed=9)
        assert aslr_layout(2, seed=9) != aslr_layout(2, seed=10)

    def test_bases_page_aligned(self):
        layout = aslr_layout(3, seed=4)
        for base in (layout.code_base, layout.static_base,
                     layout.heap_base, layout.mmap_base):
            assert base % PAGE_SIZE == 0

    def test_regions_do_not_collide(self):
        """Randomized regions must stay usable: build an address space
        and allocate from it."""
        from repro.kernel.vmem import AddressSpace
        for variant in range(8):
            space = AddressSpace(aslr_layout(variant, seed=5))
            addr = space.alloc_static()
            space.store(addr, 1)
            assert space.load(addr) == 1


class TestDCL:
    def test_disjoint_code_regions(self):
        layouts = dcl_layouts(4)
        assert code_regions_disjoint(layouts)

    def test_preserves_other_bases(self):
        base_layouts = [aslr_layout(v, seed=2) for v in range(3)]
        layouts = dcl_layouts(3, base_layouts)
        for produced, original in zip(layouts, base_layouts, strict=True):
            assert produced.static_base == original.static_base
        assert code_regions_disjoint(layouts)

    def test_overlap_detected(self):
        same = [LayoutBases(), LayoutBases()]
        assert not code_regions_disjoint(same)


class TestDiversitySpec:
    def test_no_spec_gives_identical_layouts(self):
        layouts = layouts_for(None, 3)
        assert all(layout == layouts[0] for layout in layouts)

    def test_aslr_spec_gives_distinct_layouts(self):
        layouts = layouts_for(DiversitySpec(aslr=True, seed=6), 3)
        assert len({layout.static_base for layout in layouts}) == 3

    def test_noise_applies_to_slaves_only(self):
        vms = [make_vm(0), make_vm(1), make_vm(2)]
        apply_diversity(DiversitySpec(noise=0.2, seed=1), vms)
        assert vms[0].compute_scale == 1.0
        assert vms[1].compute_scale != 1.0
        assert vms[1].instruction_noise == 0.2

    def test_noise_per_thread_factors_vary(self):
        vm = make_vm(1)
        apply_diversity(DiversitySpec(noise=0.2, seed=1), [make_vm(0),
                                                           vm])
        factors = {vm.instruction_factor_for(f"main/{i}")
                   for i in range(6)}
        assert len(factors) > 1
        # cached and deterministic
        assert (vm.instruction_factor_for("main/1")
                == vm.instruction_factor_for("main/1"))

    def test_allocator_padding_scales_with_index(self):
        vms = [make_vm(0), make_vm(1), make_vm(2)]
        apply_diversity(DiversitySpec(allocator_padding=16), vms)
        assert [vm.malloc_padding for vm in vms] == [0, 16, 32]
