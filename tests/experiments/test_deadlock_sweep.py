"""The deadlock-detection experiment: sweep rows, rendered table, and
serial/parallel equivalence."""

from repro.experiments.runner import (DeadlockSweepRow, deadlock_sweep_table,
                                      run_deadlock_sweep)


def structural(rows):
    return [(r.workload, r.mode, r.verdict, r.cycles, r.diagnosis,
             r.guard_refusals, r.cycles_identical) for r in rows]


class TestDeadlockSweep:
    def test_sweep_shape_and_semantics(self):
        rows = run_deadlock_sweep(sizes=(3,), seed=1)
        assert [(r.workload, r.mode) for r in rows] == [
            ("philosophers/3", "watchdog"),
            ("philosophers/3", "detector"),
            ("philosophers/3+trylock", "detector"),
        ]
        watchdog, detector, guarded = rows
        # Old path: the wedge burns the watchdog budget and is diagnosed
        # by the timeout cause hint.
        assert watchdog.verdict == "divergence"
        assert watchdog.diagnosis == "deadlock-suspected"
        # New path: cycle named at formation, well before the deadline.
        assert detector.verdict == "deadlock"
        assert detector.cycles < watchdog.cycles
        assert set(detector.diagnosis.split(" -> ")) == {
            "phil0", "phil1", "phil2"}
        # Guarded variant: clean, guards engaged, timeline unperturbed.
        assert guarded.verdict == "clean"
        assert guarded.guard_refusals >= 1
        assert guarded.cycles_identical is True

    def test_table_renders_speedup_line(self):
        rows = run_deadlock_sweep(sizes=(3,), seed=1)
        table = deadlock_sweep_table(rows)
        assert "diagnosis latency" in table
        assert "earlier than" in table
        assert "phil0" in table

    def test_jobs4_equals_jobs1(self):
        serial = run_deadlock_sweep(sizes=(3,), seed=2, jobs=1)
        parallel = run_deadlock_sweep(sizes=(3,), seed=2, jobs=4)
        assert structural(parallel) == structural(serial)

    def test_row_dataclass_defaults_are_explicit(self):
        row = DeadlockSweepRow(workload="w", mode="detector",
                               verdict="clean", cycles=1.0, diagnosis="-",
                               guard_refusals=0, cycles_identical=None)
        assert row.cycles_identical is None
