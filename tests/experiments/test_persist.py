"""Tests for experiment-result persistence."""

import pytest

from repro.experiments.persist import (
    load_metadata,
    load_results,
    save_results,
)
from repro.experiments.runner import ExperimentResult


def cell(**overrides):
    base = dict(benchmark="fft", agent="wall_of_clocks", variants=2,
                native_cycles=100.0, mvee_cycles=120.0, verdict="clean",
                sync_ops=10, syscalls=5, stall_cycles=3.0)
    base.update(overrides)
    return ExperimentResult(**base)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        results = [cell(), cell(benchmark="dedup", mvee_cycles=250.0)]
        path = tmp_path / "grid.json"
        save_results(results, path, metadata={"scale": 0.25})
        loaded = load_results(path)
        assert [r.benchmark for r in loaded] == ["fft", "dedup"]
        assert loaded[1].slowdown == pytest.approx(2.5)
        assert load_metadata(path) == {"scale": 0.25}

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "cells": []}')
        with pytest.raises(ValueError, match="format version"):
            load_results(path)

    def test_loaded_results_feed_tables(self, tmp_path):
        from repro.experiments.tables import table1
        path = tmp_path / "grid.json"
        save_results([cell(agent=a, variants=v)
                      for a in ("total_order", "partial_order",
                                "wall_of_clocks")
                      for v in (2, 3, 4)], path)
        text = table1(load_results(path))
        assert "wall_of_clocks" in text
