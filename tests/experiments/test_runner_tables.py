"""Tests for the experiment runner and table generators."""

import pytest

from repro.experiments.runner import (
    ExperimentResult,
    native_cycles,
    run_benchmark_grid,
    run_one,
)
from repro.experiments.tables import figure5_series, table1, table3


class TestRunner:
    def test_run_one_produces_clean_cell(self):
        result = run_one("bodytrack", "wall_of_clocks", 2, scale=0.1)
        assert result.verdict == "clean"
        assert result.slowdown > 1.0
        assert result.sync_ops > 0

    def test_cells_are_memoized(self):
        first = run_one("bodytrack", "wall_of_clocks", 2, scale=0.1)
        second = run_one("bodytrack", "wall_of_clocks", 2, scale=0.1)
        assert first is second

    def test_native_cycles_memoized(self):
        assert native_cycles("fft", scale=0.1) == \
            native_cycles("fft", scale=0.1)

    def test_grid_covers_requested_cells(self):
        results = run_benchmark_grid(benchmarks=["fft", "x264"],
                                     agents=("wall_of_clocks",),
                                     variant_counts=(2,), scale=0.1)
        assert {(r.benchmark, r.agent, r.variants) for r in results} == {
            ("fft", "wall_of_clocks", 2), ("x264", "wall_of_clocks", 2)}

    def test_to_slowdown_round_trip(self):
        result = ExperimentResult(
            benchmark="b", agent="a", variants=2, native_cycles=10.0,
            mvee_cycles=15.0, verdict="clean", sync_ops=0, syscalls=0,
            stall_cycles=0.0)
        assert result.to_slowdown().slowdown == pytest.approx(1.5)


class TestTables:
    def test_table1_renders_measured_and_paper(self):
        results = run_benchmark_grid(benchmarks=["fft"],
                                     variant_counts=(2,), scale=0.1)
        text = table1(results)
        assert "Table 1" in text
        assert "paper 1.14x" in text
        assert "wall_of_clocks" in text

    def test_figure5_renders_all_benchmarks(self):
        results = run_benchmark_grid(benchmarks=["fft"],
                                     variant_counts=(2,), scale=0.1)
        text = figure5_series(results)
        assert "fft" in text
        assert "radiosity" in text  # listed even when not run ('-')

    def test_table3_matches_paper_inline(self):
        text = table3()
        assert "libc-2.19.so" in text
        assert "319 (319)" in text
