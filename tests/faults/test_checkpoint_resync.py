"""Checkpoint resync: restart recovery from the nearest checkpoint.

Under ``resync_mode="checkpoint"`` the restart policy freezes a
fast-forward frontier from the latest checkpoint's per-thread call
counts and replays master history *up to* that frontier at zero cost;
only the suffix past the checkpoint is re-executed at full price.  The
recovered run must reach the same verdict and guest output as plain
history resync — with strictly fewer full-cost re-executed steps, and
a smaller fault-recovery cycle bucket in the profiler.

Cycle counts legitimately differ between the two modes (the resynced
variant rejoins at a different simulated time), so outcome identity is
pinned on verdict + stdout, never cycles.
"""

import pytest

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan, FaultSpec
from repro.obs import ObsHub
from tests.guestlib import MutexCounterProgram

AGENTS = ["total_order", "partial_order", "wall_of_clocks"]

#: Crash late enough that several checkpoints precede it at the test
#: cadence, so the frontier has history to fast-forward past.
CRASH_V1 = FaultPlan((FaultSpec(kind="crash", variant=1, at=12),))

CHECKPOINT_EVERY = 30_000.0


def _run(agent, resync_mode, costs, obs=None):
    return run_mvee(
        MutexCounterProgram(workers=3, iters=25),
        variants=3, agent=agent, seed=7, costs=costs,
        faults=CRASH_V1,
        policy=MonitorPolicy(degradation="restart",
                             resync_mode=resync_mode),
        checkpoints=(CHECKPOINT_EVERY
                     if resync_mode == "checkpoint" else None),
        obs=obs)


class TestCheckpointResync:
    @pytest.mark.parametrize("agent", AGENTS)
    def test_outcome_identical_with_fewer_reexecuted_steps(
            self, agent, fast_costs):
        history = _run(agent, "history", fast_costs)
        checkpoint = _run(agent, "checkpoint", fast_costs)
        # Outcome identity: same verdict, same guest output.
        assert checkpoint.verdict == history.verdict == "degraded"
        assert checkpoint.stdout == history.stdout
        # Both resynced variant 1 through a restart.
        h_stats = history.monitor.resync_stats[1]
        c_stats = checkpoint.monitor.resync_stats[1]
        assert h_stats["mode"] == "history"
        assert c_stats["mode"] == "checkpoint"
        assert h_stats["restarts"] == c_stats["restarts"] == 1
        assert h_stats["fast_forwarded"] == 0
        # The acceptance bar: strictly fewer steps re-executed at full
        # cost, the rest served for free from the checkpoint frontier.
        assert c_stats["fast_forwarded"] > 0
        assert c_stats["resynced"] < h_stats["resynced"]
        assert (c_stats["fast_forwarded"] + c_stats["resynced"]
                == h_stats["resynced"])

    @pytest.mark.parametrize("agent", AGENTS)
    def test_checkpoint_resync_matches_clean_guest_output(
            self, agent, fast_costs):
        clean = run_mvee(MutexCounterProgram(workers=3, iters=25),
                         variants=3, agent=agent, seed=7,
                         costs=fast_costs)
        recovered = _run(agent, "checkpoint", fast_costs)
        assert recovered.stdout == clean.stdout

    def test_profiler_fault_recovery_bucket_shrinks(self, fast_costs):
        def recovery_cycles(resync_mode):
            hub = ObsHub(profile=True)
            outcome = _run("wall_of_clocks", resync_mode, fast_costs,
                           obs=hub)
            hub.prof.finalize(outcome.machine.now)
            per_category = hub.prof.snapshot().per_category()
            return per_category.get("fault-recovery", 0.0)

        fr_history = recovery_cycles("history")
        fr_checkpoint = recovery_cycles("checkpoint")
        assert fr_checkpoint < fr_history

    def test_crash_before_first_checkpoint_falls_back_to_history_cost(
            self, fast_costs):
        early = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))
        outcome = run_mvee(
            MutexCounterProgram(workers=3, iters=25),
            variants=3, agent="wall_of_clocks", seed=7,
            costs=fast_costs, faults=early,
            policy=MonitorPolicy(degradation="restart",
                                 resync_mode="checkpoint"),
            checkpoints=10_000_000.0)
        assert outcome.verdict == "degraded"
        stats = outcome.monitor.resync_stats[1]
        # No checkpoint preceded the crash: the frontier is empty and
        # every recorded step is re-executed, exactly like history mode.
        assert stats["fast_forwarded"] == 0
        assert stats["resynced"] > 0
