"""Fault-plan construction, validation, and the CLI spec grammar."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
    parse_fault_spec,
)


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(kind="crash", variant=1, at=3)
        assert spec.param == 1
        assert spec.thread is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSpec(kind="meltdown", variant=0, at=0)

    def test_negative_variant_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="crash", variant=-1, at=0)

    def test_negative_trigger_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="stall", variant=0, at=-2)

    def test_describe_roundtrips_through_parser(self):
        spec = FaultSpec(kind="drop_wake", variant=2, at=5, param=3)
        assert parse_fault_spec(spec.describe()) == spec


class TestFaultPlan:
    def test_rejects_non_spec_entries(self):
        with pytest.raises(ConfigError, match="must be FaultSpec"):
            FaultPlan(("crash@v0:1",))

    def test_len_and_iter(self):
        specs = (FaultSpec(kind="crash", variant=0, at=1),
                 FaultSpec(kind="stall", variant=1, at=2))
        plan = FaultPlan(specs)
        assert len(plan) == 2
        assert tuple(plan) == specs

    def test_empty_plan_describe(self):
        assert FaultPlan().describe() == "<empty>"

    def test_random_plans_deterministic(self):
        for seed in range(8):
            first = FaultPlan.random(seed, n_variants=3)
            second = FaultPlan.random(seed, n_variants=3)
            assert first.describe() == second.describe()

    def test_random_plans_respect_kind_pinning(self):
        for seed in range(20):
            for spec in FaultPlan.random(seed, n_variants=3):
                assert spec.kind in FAULT_KINDS
                if spec.kind == "corrupt_sync":
                    assert spec.variant == 0
                if spec.kind == "clock_skew":
                    assert spec.variant >= 1
                assert 0 <= spec.variant < 3


class TestParser:
    def test_parse_single_spec(self):
        spec = parse_fault_spec("crash@v1:4")
        assert (spec.kind, spec.variant, spec.at, spec.param) == \
            ("crash", 1, 4, 1)

    def test_parse_spec_with_param(self):
        spec = parse_fault_spec("clock_skew@v2:6:1024")
        assert (spec.variant, spec.at, spec.param) == (2, 6, 1024)

    @pytest.mark.parametrize("bad", [
        "crash", "crash@1:2", "crash@v1", "crash@vX:2",
        "@v1:2", "crash@v1:two",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_spec(bad)

    def test_parse_plan_list(self):
        plan = parse_fault_plan("crash@v1:3, stall@v2:5")
        assert [spec.kind for spec in plan] == ["crash", "stall"]

    def test_parse_plan_random_is_seeded(self):
        first = parse_fault_plan("random", seed=3, n_variants=3)
        second = parse_fault_plan("random", seed=3, n_variants=3)
        assert first.describe() == second.describe()
        assert len(first) >= 1
