"""Graceful degradation: quarantine a faulty variant, keep the rest.

The ISSUE's acceptance scenario: three variants, one injected crash.
Under ``kill-all`` the whole set dies with a ``VARIANT_FAULT`` verdict;
under ``quarantine`` the survivors finish the workload with output
byte-identical to a fault-free run, plus a structured quarantine report.
"""

import pytest

from repro.core.divergence import DivergenceKind, MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan, FaultSpec
from tests.guestlib import MutexCounterProgram

CRASH_V1 = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))


def _run(plan=CRASH_V1, policy=None, variants=3, costs=None):
    return run_mvee(MutexCounterProgram(workers=3, iters=25),
                    variants=variants, seed=7, costs=costs,
                    faults=plan, policy=policy)


class TestQuarantine:
    def test_crash_quarantined_run_completes_identically(self, fast_costs):
        clean = _run(plan=None, costs=fast_costs)
        assert clean.verdict == "clean"
        outcome = _run(policy=MonitorPolicy(degradation="quarantine"),
                       costs=fast_costs)
        assert outcome.verdict == "degraded"
        assert outcome.stdout == clean.stdout
        assert len(outcome.faults) == 1
        assert outcome.faults[0].kind == "crash"

    def test_quarantine_event_is_structured(self, fast_costs):
        outcome = _run(policy=MonitorPolicy(degradation="quarantine"),
                       costs=fast_costs)
        event, = outcome.quarantines
        assert event.variant == 1
        assert event.report.kind is DivergenceKind.VARIANT_FAULT
        assert event.at_cycles > 0
        assert not event.restarted
        assert "variant 1 quarantined" in event.summary()

    def test_kill_all_reproduces_kill_verdict(self, fast_costs):
        outcome = _run(costs=fast_costs)  # default policy: kill-all
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind is DivergenceKind.VARIANT_FAULT
        assert not outcome.quarantines

    def test_master_fault_falls_back_to_kill(self, fast_costs):
        """The master is wired to real I/O: it cannot be quarantined."""
        outcome = _run(plan=FaultPlan((FaultSpec(
                           kind="crash", variant=0, at=4),)),
                       policy=MonitorPolicy(degradation="quarantine"),
                       costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert not outcome.quarantines

    def test_min_active_floor_falls_back_to_kill(self, fast_costs):
        """Two variants: losing one drops below min_active=2 -> kill."""
        outcome = _run(policy=MonitorPolicy(degradation="quarantine"),
                       variants=2, costs=fast_costs)
        assert outcome.verdict == "divergence"
        assert not outcome.quarantines

    def test_min_active_one_allows_lone_master(self, fast_costs):
        clean = _run(plan=None, costs=fast_costs)
        outcome = _run(policy=MonitorPolicy(degradation="quarantine",
                                            min_active=1),
                       variants=2, costs=fast_costs)
        assert outcome.verdict == "degraded"
        assert outcome.stdout == clean.stdout

    @pytest.mark.parametrize("policy", ["quarantine", "restart"])
    def test_degraded_runs_are_deterministic(self, policy, fast_costs):
        def once():
            return _run(policy=MonitorPolicy(degradation=policy),
                        costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict == "degraded"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout
        assert ([e.summary() for e in first.quarantines]
                == [e.summary() for e in second.quarantines])
