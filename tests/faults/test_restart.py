"""Restart policy: a quarantined variant is rebuilt and resynced.

Under ``degradation="restart"`` the monitor quarantines a faulty slave,
then the MVEE builds a fresh variant (same deterministic diversity
transforms), re-admits it in catch-up mode — recorded calls served from
the retained master history — and lets it rejoin the live lockstep.
"""

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan, FaultSpec
from repro.obs import ObsHub
from tests.guestlib import MutexCounterProgram

CRASH_V1 = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))


def _run(policy, plan=CRASH_V1, costs=None, obs=None):
    return run_mvee(MutexCounterProgram(workers=3, iters=25),
                    variants=3, seed=7, costs=costs, faults=plan,
                    policy=policy, obs=obs)


class TestRestart:
    def test_restarted_run_completes_identically(self, fast_costs):
        clean = _run(MonitorPolicy(), plan=None, costs=fast_costs)
        outcome = _run(MonitorPolicy(degradation="restart"),
                       costs=fast_costs)
        assert outcome.verdict == "degraded"
        assert outcome.stdout == clean.stdout

    def test_quarantine_event_marks_restart(self, fast_costs):
        outcome = _run(MonitorPolicy(degradation="restart"),
                       costs=fast_costs)
        event, = outcome.quarantines
        assert event.variant == 1
        assert event.restarted
        assert "and restarted" in event.summary()

    def test_replacement_vm_is_swapped_in(self, fast_costs):
        outcome = _run(MonitorPolicy(degradation="restart"),
                       costs=fast_costs)
        mvee_retired = outcome.machine  # machine holds the live set
        assert any(vm.index == 1 for vm in outcome.vms)
        replacement = next(vm for vm in outcome.vms if vm.index == 1)
        assert not replacement.killed
        # The condemned predecessor is retained for forensics.
        assert outcome.monitor.quarantine_log[0].variant == 1
        assert mvee_retired is outcome.machine

    def test_max_restarts_zero_degrades_without_restart(self, fast_costs):
        outcome = _run(MonitorPolicy(degradation="restart",
                                     max_restarts=0),
                       costs=fast_costs)
        assert outcome.verdict == "degraded"
        event, = outcome.quarantines
        assert not event.restarted

    def test_obs_records_restart_action(self, fast_costs):
        hub = ObsHub()
        outcome = _run(MonitorPolicy(degradation="restart"),
                       costs=fast_costs, obs=hub)
        assert outcome.verdict == "degraded"
        actions = [event["action"] for event in hub.recovery_log]
        assert actions.count("quarantine") == 1
        assert actions.count("restart") == 1
        assert hub.metrics.counter("resilience.restarts").value == 1
