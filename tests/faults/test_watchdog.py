"""The lockstep watchdog: stalled variants are diagnosed, not waited on.

A ``stall`` fault parks one variant's thread inside a monitored call on a
key nothing ever wakes.  Without a watchdog the run burns its whole cycle
budget; with one, the monitor fires at the rendezvous deadline, names the
variant and call that never arrived, and applies the degradation policy.
"""

from repro.core.divergence import DivergenceKind, MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan, FaultSpec
from repro.obs import ObsHub
from tests.guestlib import MutexCounterProgram

WATCHDOG = 400_000.0
STALL_PLAN = FaultPlan((FaultSpec(kind="stall", variant=1, at=4),))


def _run(policy=None, obs=None, **kwargs):
    return run_mvee(MutexCounterProgram(workers=3, iters=25),
                    variants=3, seed=7, faults=STALL_PLAN,
                    policy=policy or MonitorPolicy(
                        watchdog_cycles=WATCHDOG),
                    max_cycles=50_000_000.0, obs=obs, **kwargs)


class TestWatchdog:
    def test_stall_diagnosed_within_deadline(self, fast_costs):
        outcome = _run(costs=fast_costs)
        assert outcome.verdict == "divergence"
        report = outcome.divergence
        assert report.kind is DivergenceKind.WATCHDOG_TIMEOUT
        assert "[1]" in report.detail
        # Diagnosed at the deadline, nowhere near the cycle budget.
        assert outcome.cycles < 10 * WATCHDOG

    def test_report_names_stalled_variant_and_call(self, fast_costs):
        outcome = _run(costs=fast_costs)
        report = outcome.divergence
        assert report.observations[1] == "<never arrived>"
        # The survivors' arrivals name the call the stalled variant
        # failed to reach.
        arrived = [obs for v, obs in report.observations.items()
                   if v != 1]
        assert arrived and all(obs != "<never arrived>"
                               for obs in arrived)

    def test_bundle_records_watchdog_event(self, fast_costs):
        hub = ObsHub()
        outcome = _run(costs=fast_costs, obs=hub)
        bundle = outcome.obs_bundle
        assert bundle is not None
        assert bundle.report["kind"] == "watchdog_timeout"
        assert bundle.faults and bundle.faults[0]["kind"] == "stall"
        actions = [event["action"] for event in bundle.recovery]
        assert "watchdog_timeout" in actions
        timeout = next(event for event in bundle.recovery
                       if event["action"] == "watchdog_timeout")
        assert timeout["variants"] == [1]

    def test_quarantine_policy_survives_stall(self, fast_costs):
        clean = run_mvee(MutexCounterProgram(workers=3, iters=25),
                         variants=3, seed=7, costs=fast_costs)
        outcome = _run(costs=fast_costs,
                       policy=MonitorPolicy(degradation="quarantine",
                                            watchdog_cycles=WATCHDOG))
        assert outcome.verdict == "degraded"
        assert [event.variant for event in outcome.quarantines] == [1]
        assert outcome.stdout == clean.stdout

    def test_no_watchdog_means_no_timeout_diagnosis(self, fast_costs):
        outcome = run_mvee(MutexCounterProgram(workers=3, iters=25),
                           variants=3, seed=7, costs=fast_costs,
                           faults=STALL_PLAN,
                           max_cycles=50_000_000.0)
        assert len(outcome.faults) == 1
        assert outcome.verdict == "deadlock"


class TestWatchdogCauseHint:
    """WATCHDOG_TIMEOUT diagnoses carry a cause hint: ``stall`` for a
    single wedged variant, ``deadlock-suspected`` when >= 2 variants sit
    with multiple threads blocked on each other."""

    def test_single_variant_stall_hints_stall(self, fast_costs):
        outcome = _run(costs=fast_costs)
        assert outcome.divergence.kind is DivergenceKind.WATCHDOG_TIMEOUT
        assert "[cause: stall]" in outcome.divergence.detail

    def test_guest_deadlock_hints_deadlock_suspected(self, fast_costs):
        from repro.workloads import DiningPhilosophers

        outcome = run_mvee(DiningPhilosophers(3), variants=2, seed=11,
                           costs=fast_costs,
                           policy=MonitorPolicy(watchdog_cycles=WATCHDOG),
                           max_cycles=50_000_000.0)
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind is DivergenceKind.WATCHDOG_TIMEOUT
        assert "[cause: deadlock-suspected]" in outcome.divergence.detail
