"""Tests for the guest libc allocator and the mini-OpenMP runtime."""

from repro.guest.gomp import parallel_for
from repro.guest.libc import ARENA_CHUNK, GuestLibc
from repro.guest.program import GuestProgram
from repro.run import run_native
from tests.guestlib import MallocStormProgram


class TestGuestLibc:
    def test_malloc_returns_distinct_blocks(self):
        class P(GuestProgram):
            def main(self, ctx):
                libc = yield from GuestLibc.setup(ctx)
                first = yield from libc.malloc(ctx, 32)
                second = yield from libc.malloc(ctx, 32)
                return (first, second)

        result = run_native(P(), seed=0)
        first, second = result.vm.threads["main"].result
        assert second == first + 32

    def test_malloc_rounds_to_8(self):
        class P(GuestProgram):
            def main(self, ctx):
                libc = yield from GuestLibc.setup(ctx)
                first = yield from libc.malloc(ctx, 5)
                second = yield from libc.malloc(ctx, 5)
                return second - first

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == 8

    def test_arena_growth_issues_brk(self):
        class P(GuestProgram):
            def main(self, ctx):
                libc = yield from GuestLibc.setup(ctx)
                for _ in range(6):
                    yield from libc.malloc(ctx, ARENA_CHUNK // 2)

        result = run_native(P(), seed=0, record_trace=True)
        brks = [e for e in result.vm.trace if e.name == "brk"]
        assert len(brks) >= 3  # setup (2) plus at least one growth

    def test_concurrent_malloc_blocks_disjoint(self):
        result = run_native(MallocStormProgram(workers=4, allocs=20),
                            seed=2)
        blocks = result.vm.threads["main"].result
        flat = sorted(addr for worker in blocks for addr in worker)
        assert len(flat) == len(set(flat)), "allocator handed out overlaps"

    def test_allocator_padding_changes_behaviour(self):
        """The diversified-allocator knob (Section 4.5.1's unsupported
        diversity): padding changes block spacing."""

        class P(GuestProgram):
            def __init__(self, padding):
                self.padding = padding

            def main(self, ctx):
                ctx.vm.malloc_padding = self.padding
                libc = yield from GuestLibc.setup(ctx)
                first = yield from libc.malloc(ctx, 16)
                second = yield from libc.malloc(ctx, 16)
                return second - first

        plain = run_native(P(0), seed=0)
        padded = run_native(P(24), seed=0)
        assert plain.vm.threads["main"].result == 16
        assert padded.vm.threads["main"].result == 40


class TestGomp:
    def test_parallel_for_covers_all_iterations(self):
        class P(GuestProgram):
            static_vars = ("hits",)

            def main(self, ctx):
                def body(wctx, index):
                    addr = wctx.static_addr("hits")
                    yield from wctx.fetch_add(addr, 1, site="t.body")

                yield from parallel_for(ctx, workers=4, iterations=37,
                                        body=body, chunk=3)
                return ctx.mem_load(ctx.static_addr("hits"))

        result = run_native(P(), seed=1)
        assert result.vm.threads["main"].result == 37

    def test_parallel_for_pure_compute(self):
        class P(GuestProgram):
            def main(self, ctx):
                yield from parallel_for(ctx, workers=3, iterations=12,
                                        body=None, work_cycles=2_000)

        result = run_native(P(), seed=1)
        assert result.cycles >= 12 * 2_000 / 3

    def test_single_worker_degenerates_to_serial(self):
        class P(GuestProgram):
            static_vars = ("hits",)

            def main(self, ctx):
                def body(wctx, index):
                    addr = wctx.static_addr("hits")
                    yield from wctx.fetch_add(addr, 1, site="t.body")

                yield from parallel_for(ctx, workers=1, iterations=5,
                                        body=body)
                return ctx.mem_load(ctx.static_addr("hits"))

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == 5
