"""Tests for the guest synchronization library (the "libpthread")."""

import pytest

from repro.guest.program import GuestProgram
from repro.guest.sync import (
    LIBPTHREAD_SITES,
    Barrier,
    CondVar,
    Mutex,
    RWLock,
    Semaphore,
    SpinLock,
    TicketLock,
)
from repro.run import run_native


def run_counter(lock_factory, workers=4, iters=60, seed=3):
    """Run a counter program with an arbitrary lock; returns final total."""

    class P(GuestProgram):
        static_vars = ("w0", "w1", "counter")

        def main(self, ctx):
            lock = lock_factory(ctx)
            tids = yield from ctx.spawn_all(
                self.worker, [(lock,) for _ in range(workers)])
            yield from ctx.join_all(tids)
            return ctx.mem_load(ctx.static_addr("counter"))

        def worker(self, ctx, lock):
            addr = ctx.static_addr("counter")
            for _ in range(iters):
                yield from ctx.compute(300)
                yield from lock.acquire(ctx)
                ctx.mem_store(addr, ctx.mem_load(addr) + 1)
                yield from lock.release(ctx)
            return 0

    result = run_native(P(), seed=seed)
    return result.vm.threads["main"].result


class TestMutualExclusion:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_spinlock_counter_exact(self, seed):
        total = run_counter(
            lambda ctx: SpinLock(ctx.static_addr("w0")), seed=seed)
        assert total == 240

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mutex_counter_exact(self, seed):
        total = run_counter(
            lambda ctx: Mutex(ctx.static_addr("w0")), seed=seed)
        assert total == 240

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ticket_lock_counter_exact(self, seed):
        total = run_counter(
            lambda ctx: TicketLock(ctx.static_addr("w0"),
                                   ctx.static_addr("w1")), seed=seed)
        assert total == 240


class TestMutexProtocol:
    def test_trylock_fails_when_held(self):
        class P(GuestProgram):
            static_vars = ("mutex",)

            def main(self, ctx):
                mutex = Mutex(ctx.static_addr("mutex"))
                yield from mutex.acquire(ctx)
                got = yield from mutex.try_acquire(ctx)
                yield from mutex.release(ctx)
                got_after = yield from mutex.try_acquire(ctx)
                return (got, got_after)

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == (False, True)

    def test_contended_mutex_uses_futex(self):
        from tests.guestlib import MutexCounterProgram
        result = run_native(MutexCounterProgram(workers=4, iters=40),
                            seed=1, record_trace=True)
        names = {entry.name for entry in result.vm.trace}
        assert "futex_wait" in names or "futex_wake" in names


class TestCondVar:
    def test_signal_wakes_waiter(self):
        class P(GuestProgram):
            static_vars = ("mutex", "cond", "flag")

            def main(self, ctx):
                mutex = Mutex(ctx.static_addr("mutex"))
                cond = CondVar(ctx.static_addr("cond"))
                tid = yield from ctx.spawn(self.waiter, mutex, cond)
                yield from ctx.compute(20_000)
                yield from mutex.acquire(ctx)
                ctx.mem_store(ctx.static_addr("flag"), 1)
                yield from mutex.release(ctx)
                yield from cond.signal(ctx)
                value = yield from ctx.join(tid)
                return value

            def waiter(self, ctx, mutex, cond):
                yield from mutex.acquire(ctx)
                while ctx.mem_load(ctx.static_addr("flag")) == 0:
                    yield from cond.wait(ctx, mutex)
                yield from mutex.release(ctx)
                return "woken"

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == "woken"

    def test_broadcast_wakes_all(self):
        class P(GuestProgram):
            static_vars = ("mutex", "cond", "flag", "woken")

            def main(self, ctx):
                mutex = Mutex(ctx.static_addr("mutex"))
                cond = CondVar(ctx.static_addr("cond"))
                tids = yield from ctx.spawn_all(
                    self.waiter, [(mutex, cond) for _ in range(3)])
                yield from ctx.compute(30_000)
                yield from mutex.acquire(ctx)
                ctx.mem_store(ctx.static_addr("flag"), 1)
                yield from mutex.release(ctx)
                yield from cond.broadcast(ctx)
                yield from ctx.join_all(tids)
                return ctx.mem_load(ctx.static_addr("woken"))

            def waiter(self, ctx, mutex, cond):
                yield from mutex.acquire(ctx)
                while ctx.mem_load(ctx.static_addr("flag")) == 0:
                    yield from cond.wait(ctx, mutex)
                addr = ctx.static_addr("woken")
                ctx.mem_store(addr, ctx.mem_load(addr) + 1)
                yield from mutex.release(ctx)

        result = run_native(P(), seed=2)
        assert result.vm.threads["main"].result == 3


class TestBarrier:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_no_thread_enters_next_phase_early(self, workers):
        class P(GuestProgram):
            static_vars = ("count", "gen", "arrived")

            def main(self, ctx):
                barrier = Barrier(ctx.static_addr("count"),
                                  ctx.static_addr("gen"), workers)
                tids = yield from ctx.spawn_all(
                    self.worker,
                    [(barrier, i) for i in range(workers)])
                snapshots = yield from ctx.join_all(tids)
                return snapshots

            def worker(self, ctx, barrier, index):
                addr = ctx.static_addr("arrived")
                snapshots = []
                for _phase in range(4):
                    yield from ctx.compute(500 + index * 333)
                    yield from ctx.fetch_add(addr, 1, site="t.arrive")
                    yield from barrier.wait(ctx)
                    # after the barrier, all workers of this phase arrived
                    snapshots.append(ctx.mem_load(addr))
                    yield from barrier.wait(ctx)
                return snapshots

        result = run_native(P(), seed=1)
        for snapshots in result.vm.threads["main"].result:
            assert snapshots == [workers * (phase + 1)
                                 for phase in range(4)]

    def test_exactly_one_serial_thread(self):
        class P(GuestProgram):
            static_vars = ("count", "gen")

            def main(self, ctx):
                barrier = Barrier(ctx.static_addr("count"),
                                  ctx.static_addr("gen"), 3)
                tids = yield from ctx.spawn_all(
                    self.worker, [(barrier,) for _ in range(3)])
                flags = yield from ctx.join_all(tids)
                return flags

            def worker(self, ctx, barrier):
                yield from ctx.compute(200)
                serial = yield from barrier.wait(ctx)
                return serial

        result = run_native(P(), seed=4)
        assert sum(result.vm.threads["main"].result) == 1


class TestSemaphore:
    def test_limits_concurrency(self):
        class P(GuestProgram):
            static_vars = ("sem", "inside", "max_inside")

            def main(self, ctx):
                ctx.mem_store(ctx.static_addr("sem"), 2)  # two permits
                sem = Semaphore(ctx.static_addr("sem"))
                tids = yield from ctx.spawn_all(
                    self.worker, [(sem,) for _ in range(5)])
                yield from ctx.join_all(tids)
                return ctx.mem_load(ctx.static_addr("max_inside"))

            def worker(self, ctx, sem):
                yield from sem.acquire(ctx)
                inside = ctx.static_addr("inside")
                peak = ctx.static_addr("max_inside")
                ctx.mem_store(inside, ctx.mem_load(inside) + 1)
                if ctx.mem_load(inside) > ctx.mem_load(peak):
                    ctx.mem_store(peak, ctx.mem_load(inside))
                yield from ctx.compute(3_000)
                ctx.mem_store(inside, ctx.mem_load(inside) - 1)
                yield from sem.release(ctx)

        result = run_native(P(), seed=3)
        assert 1 <= result.vm.threads["main"].result <= 2


class TestRWLock:
    def test_readers_share_writers_exclude(self):
        class P(GuestProgram):
            static_vars = ("state", "writers", "value", "bad")

            def main(self, ctx):
                rwlock = RWLock(ctx.static_addr("state"),
                                ctx.static_addr("writers"))
                tids = []
                for _ in range(3):
                    tid = yield from ctx.spawn(self.reader, rwlock)
                    tids.append(tid)
                for _ in range(2):
                    tid = yield from ctx.spawn(self.writer, rwlock)
                    tids.append(tid)
                yield from ctx.join_all(tids)
                return (ctx.mem_load(ctx.static_addr("bad")),
                        ctx.mem_load(ctx.static_addr("value")))

            def reader(self, ctx, rwlock):
                for _ in range(10):
                    yield from rwlock.acquire_read(ctx)
                    before = ctx.mem_load(ctx.static_addr("value"))
                    yield from ctx.compute(500)
                    after = ctx.mem_load(ctx.static_addr("value"))
                    if before != after:  # a writer intruded
                        ctx.mem_store(ctx.static_addr("bad"), 1)
                    yield from rwlock.release_read(ctx)
                    yield from ctx.compute(200)

            def writer(self, ctx, rwlock):
                for _ in range(5):
                    yield from rwlock.acquire_write(ctx)
                    addr = ctx.static_addr("value")
                    ctx.mem_store(addr, ctx.mem_load(addr) + 1)
                    yield from ctx.compute(300)
                    yield from rwlock.release_write(ctx)
                    yield from ctx.compute(400)

        result = run_native(P(), seed=5)
        bad, value = result.vm.threads["main"].result
        assert bad == 0
        assert value == 10


class TestSiteCatalogue:
    def test_all_sites_have_library_prefix(self):
        assert all(site.startswith("libpthread.")
                   for site in LIBPTHREAD_SITES)

    def test_catalogue_is_complete_for_spinlock(self):
        assert SpinLock.SITE_LOCK in LIBPTHREAD_SITES
        assert SpinLock.SITE_UNLOCK in LIBPTHREAD_SITES


class TestOnce:
    def _once_program(self, workers):
        from repro.guest.sync import Once

        class P(GuestProgram):
            static_vars = ("once", "init_count", "ready")

            def main(self, ctx):
                once = Once(ctx.static_addr("once"))
                tids = yield from ctx.spawn_all(
                    self.worker, [(once,) for _ in range(workers)])
                winners = yield from ctx.join_all(tids)
                return (ctx.mem_load(ctx.static_addr("init_count")),
                        sum(winners))

            def worker(self, ctx, once):
                def initializer(ictx):
                    yield from ictx.compute(2_000)
                    addr = ictx.static_addr("init_count")
                    ictx.mem_store(addr, ictx.mem_load(addr) + 1)

                won = yield from once.call(ctx, initializer)
                # After call() returns, initialization must be visible.
                assert ctx.mem_load(ctx.static_addr("init_count")) == 1
                return 1 if won else 0

        return P()

    @pytest.mark.parametrize("workers", [2, 4, 6])
    def test_initializer_runs_exactly_once(self, workers):
        result = run_native(self._once_program(workers), seed=3)
        init_count, winners = result.vm.threads["main"].result
        assert init_count == 1
        assert winners == 1

    def test_once_replays_cleanly_under_mvee(self):
        from repro.core.mvee import run_mvee
        for agent in ("total_order", "partial_order", "wall_of_clocks"):
            outcome = run_mvee(self._once_program(4), variants=2,
                               agent=agent, seed=5)
            assert outcome.verdict == "clean"

    def test_once_site_in_catalogue(self):
        from repro.guest.sync import Once
        assert Once.SITE_CLAIM in LIBPTHREAD_SITES
