"""Reusable guest programs for the test suite.

Each program exercises a distinct slice of the paper's problem space:
schedule-dependent output, FD races, futex-backed primitives, hidden libc
sync ops, pipelines.  Tests parameterize over these.
"""

from __future__ import annotations

from repro.guest.libc import GuestLibc
from repro.guest.program import GuestProgram
from repro.guest.sync import (
    Barrier,
    CondVar,
    Mutex,
    Semaphore,
    SpinLock,
    VolatileFlag,
)


class CounterProgram(GuestProgram):
    """Spinlock-protected shared counter; periodic schedule-dependent
    printf makes benign divergence observable (Section 1's scenario)."""

    name = "counter"
    static_vars = ("lock", "counter")

    def __init__(self, workers: int = 4, iters: int = 150,
                 compute: float = 2000.0, chatty: bool = True):
        self.workers = workers
        self.iters = iters
        self.compute = compute
        self.chatty = chatty

    def main(self, ctx):
        lock = SpinLock(ctx.static_addr("lock"))
        tids = yield from ctx.spawn_all(
            self.worker, [(lock, i) for i in range(self.workers)])
        yield from ctx.join_all(tids)
        total = ctx.mem_load(ctx.static_addr("counter"))
        yield from ctx.printf(f"total={total}\n")
        return total

    def worker(self, ctx, lock, index):
        observed = 0
        for step in range(self.iters):
            yield from ctx.compute(self.compute)
            yield from lock.acquire(ctx)
            observed = ctx.mem_load(ctx.static_addr("counter"))
            ctx.mem_store(ctx.static_addr("counter"), observed + 1)
            yield from lock.release(ctx)
            if self.chatty and step % 40 == 39:
                yield from ctx.printf(f"w{index} saw {observed}\n")
        return observed


class MutexCounterProgram(GuestProgram):
    """Same shape but with the futex-backed mutex (contended slow path)."""

    name = "mutex_counter"
    static_vars = ("mutex", "counter")

    def __init__(self, workers: int = 4, iters: int = 100):
        self.workers = workers
        self.iters = iters

    def main(self, ctx):
        mutex = Mutex(ctx.static_addr("mutex"))
        tids = yield from ctx.spawn_all(
            self.worker, [(mutex,) for _ in range(self.workers)])
        yield from ctx.join_all(tids)
        total = ctx.mem_load(ctx.static_addr("counter"))
        yield from ctx.printf(f"total={total}\n")
        return total

    def worker(self, ctx, mutex):
        for _ in range(self.iters):
            yield from ctx.compute(400)
            yield from mutex.acquire(ctx)
            value = ctx.mem_load(ctx.static_addr("counter"))
            yield from ctx.compute(150)
            ctx.mem_store(ctx.static_addr("counter"), value + 1)
            yield from mutex.release(ctx)
        return 0


class FDRaceProgram(GuestProgram):
    """Section 3.1's example: threads race to open files and print the FD
    values they received.  Without cross-variant syscall ordering the FD
    numbers differ between variants."""

    name = "fd_race"
    static_vars = ()

    def __init__(self, workers: int = 4, files_per_worker: int = 6):
        self.workers = workers
        self.files_per_worker = files_per_worker

    @staticmethod
    def populate(disk) -> None:
        for index in range(64):
            disk.add_file(f"/data/input{index}.txt",
                          f"contents {index}\n".encode())

    def main(self, ctx):
        tids = yield from ctx.spawn_all(
            self.worker, [(i,) for i in range(self.workers)])
        yield from ctx.join_all(tids)
        return 0

    def worker(self, ctx, index):
        fds = []
        for k in range(self.files_per_worker):
            yield from ctx.compute(700)
            fd = yield from ctx.open(
                f"/data/input{index * 8 + k}.txt")
            fds.append(fd)
            yield from ctx.printf(f"w{index} got fd {fd}\n")
        for fd in fds:
            data = yield from ctx.read(fd, 64)
            yield from ctx.compute(200)
            yield from ctx.close(fd)
        return tuple(fds)


class ProducerConsumerProgram(GuestProgram):
    """Bounded buffer with mutex + two condition variables."""

    name = "producer_consumer"
    static_vars = ("mutex", "not_full", "not_empty", "count", "produced",
                   "consumed")

    def __init__(self, producers: int = 2, consumers: int = 2,
                 items_per_producer: int = 40, capacity: int = 4):
        self.producers = producers
        self.consumers = consumers
        self.items_per_producer = items_per_producer
        self.capacity = capacity

    def main(self, ctx):
        mutex = Mutex(ctx.static_addr("mutex"))
        not_full = CondVar(ctx.static_addr("not_full"))
        not_empty = CondVar(ctx.static_addr("not_empty"))
        total = self.producers * self.items_per_producer
        prods = yield from ctx.spawn_all(
            self.producer,
            [(mutex, not_full, not_empty) for _ in range(self.producers)])
        cons_share = total // self.consumers
        cons = yield from ctx.spawn_all(
            self.consumer,
            [(mutex, not_full, not_empty, cons_share)
             for _ in range(self.consumers)])
        yield from ctx.join_all(prods + cons)
        consumed = ctx.mem_load(ctx.static_addr("consumed"))
        yield from ctx.printf(f"consumed={consumed}\n")
        return consumed

    def producer(self, ctx, mutex, not_full, not_empty):
        count_addr = ctx.static_addr("count")
        for _ in range(self.items_per_producer):
            yield from ctx.compute(500)
            yield from mutex.acquire(ctx)
            while ctx.mem_load(count_addr) >= self.capacity:
                yield from not_full.wait(ctx, mutex)
            ctx.mem_store(count_addr, ctx.mem_load(count_addr) + 1)
            produced_addr = ctx.static_addr("produced")
            ctx.mem_store(produced_addr,
                          ctx.mem_load(produced_addr) + 1)
            yield from mutex.release(ctx)
            yield from not_empty.signal(ctx)
        return 0

    def consumer(self, ctx, mutex, not_full, not_empty, quota):
        count_addr = ctx.static_addr("count")
        for _ in range(quota):
            yield from mutex.acquire(ctx)
            while ctx.mem_load(count_addr) == 0:
                yield from not_empty.wait(ctx, mutex)
            ctx.mem_store(count_addr, ctx.mem_load(count_addr) - 1)
            consumed_addr = ctx.static_addr("consumed")
            ctx.mem_store(consumed_addr,
                          ctx.mem_load(consumed_addr) + 1)
            yield from mutex.release(ctx)
            yield from not_full.signal(ctx)
            yield from ctx.compute(400)
        return 0


class BarrierPhasesProgram(GuestProgram):
    """Phased computation: all threads synchronize at a barrier each phase
    and the phase results depend on every thread's contribution."""

    name = "barrier_phases"
    static_vars = ("bar_count", "bar_gen", "accum")

    def __init__(self, workers: int = 4, phases: int = 5):
        self.workers = workers
        self.phases = phases

    def main(self, ctx):
        barrier = Barrier(ctx.static_addr("bar_count"),
                          ctx.static_addr("bar_gen"), self.workers)
        tids = yield from ctx.spawn_all(
            self.worker, [(barrier, i) for i in range(self.workers)])
        results = yield from ctx.join_all(tids)
        yield from ctx.printf(f"accum={max(results)}\n")
        return max(results)

    def worker(self, ctx, barrier, index):
        accum_addr = ctx.static_addr("accum")
        for _phase in range(self.phases):
            yield from ctx.compute(1000 + 173 * index)
            yield from ctx.fetch_add(accum_addr, index + 1,
                                     site="app.accum.xadd")
            yield from barrier.wait(ctx)
        return ctx.mem_load(accum_addr)


class MallocStormProgram(GuestProgram):
    """Hammers guest malloc from many threads: exercises the *hidden*
    libc-internal spinlock and allocation-ordering (Section 3.3)."""

    name = "malloc_storm"
    static_vars = ()

    def __init__(self, workers: int = 4, allocs: int = 30):
        self.workers = workers
        self.allocs = allocs

    def main(self, ctx):
        yield from GuestLibc.setup(ctx)
        tids = yield from ctx.spawn_all(
            self.worker, [(i,) for i in range(self.workers)])
        blocks = yield from ctx.join_all(tids)
        yield from ctx.printf(f"allocated {sum(len(b) for b in blocks)}\n")
        return blocks

    def worker(self, ctx, index):
        blocks = []
        for k in range(self.allocs):
            yield from ctx.compute(300)
            block = yield from ctx.libc.malloc(ctx, 48 + 16 * (k % 5))
            blocks.append(block)
        return blocks


class PipelineProgram(GuestProgram):
    """dedup/ferret-style pipeline over OS pipes with semaphore pacing."""

    name = "pipeline"
    static_vars = ("sem_stage1", "items_done")

    def __init__(self, items: int = 25):
        self.items = items

    def main(self, ctx):
        read_fd, write_fd = yield from ctx.syscall("pipe")
        sem = Semaphore(ctx.static_addr("sem_stage1"))
        producer = yield from ctx.spawn(self.producer, write_fd, sem)
        consumer = yield from ctx.spawn(self.consumer, read_fd, sem)
        yield from ctx.join_all([producer, consumer])
        done = ctx.mem_load(ctx.static_addr("items_done"))
        yield from ctx.printf(f"pipeline done={done}\n")
        return done

    def producer(self, ctx, write_fd, sem):
        for index in range(self.items):
            yield from ctx.compute(600)
            yield from ctx.write(write_fd, f"item-{index:04d};")
            yield from sem.release(ctx)
        yield from ctx.close(write_fd)
        return 0

    def consumer(self, ctx, read_fd, sem):
        done_addr = ctx.static_addr("items_done")
        buffered = b""
        while True:
            yield from sem.acquire(ctx)
            data = yield from ctx.read(read_fd, 32)
            if data == b"":
                break
            buffered += data
            while b";" in buffered:
                _, buffered = buffered.split(b";", 1)
                ctx.mem_store(done_addr, ctx.mem_load(done_addr) + 1)
            yield from ctx.compute(900)
            if ctx.mem_load(done_addr) >= self.items:
                break
        yield from ctx.close(read_fd)
        return 0


class LooselyCoupledProgram(GuestProgram):
    """Threads that never communicate: the case VARAN-style relaxed
    monitoring handles fine (per-thread sequences are schedule-independent)."""

    name = "loosely_coupled"
    static_vars = ()

    def __init__(self, workers: int = 4, steps: int = 20):
        self.workers = workers
        self.steps = steps

    def main(self, ctx):
        tids = yield from ctx.spawn_all(
            self.worker, [(i,) for i in range(self.workers)])
        yield from ctx.join_all(tids)
        return 0

    def worker(self, ctx, index):
        for step in range(self.steps):
            yield from ctx.compute(800 + index * 37)
            yield from ctx.printf(f"w{index} step {step}\n")
        return index


class VolatileFlagProgram(GuestProgram):
    """Listing 2 at run time: one thread publishes a payload and raises
    a volatile flag; another spins on the flag and reads the payload.
    No LOCK-prefixed instruction ever touches the flag, so the static
    pipeline misses both sites and the flag accesses race by
    construction — the reference workload for the detector's coverage
    cross-check (docs/RACES.md)."""

    name = "volatile_flag"
    static_vars = ("flag", "payload")

    def __init__(self, compute: float = 2000.0):
        self.compute = compute

    def main(self, ctx):
        flag = VolatileFlag(ctx.static_addr("flag"))
        signaler = yield from ctx.spawn(self.signaler, flag)
        waiter = yield from ctx.spawn(self.waiter, flag)
        yield from ctx.join_all([signaler, waiter])
        return ctx.mem_load(ctx.static_addr("payload"))

    def signaler(self, ctx, flag):
        yield from ctx.compute(self.compute)
        ctx.mem_store(ctx.static_addr("payload"), 42)
        yield from flag.raise_flag(ctx)
        return 0

    def waiter(self, ctx, flag):
        yield from flag.spin_until_raised(ctx)
        return ctx.mem_load(ctx.static_addr("payload"))


class ScheduleWitnessProgram(GuestProgram):
    """Workers record the counter values they observe at each increment;
    main prints a digest after joining.  The digest is a pure function of
    the global increment interleaving, and the program performs *no*
    monitored syscalls until that single final write — ideal for
    comparing schedulers (DMT vs the paper's agents) without the
    lockstep-rendezvous interference mid-run."""

    name = "schedule_witness"
    static_vars = ("lock", "counter")

    def __init__(self, workers: int = 4, iters: int = 50,
                 compute: float = 1500.0):
        self.workers = workers
        self.iters = iters
        self.compute = compute

    def main(self, ctx):
        lock = SpinLock(ctx.static_addr("lock"))
        tids = yield from ctx.spawn_all(
            self.worker, [(lock,) for _ in range(self.workers)])
        observations = yield from ctx.join_all(tids)
        digest = hash(tuple(tuple(obs) for obs in observations)) & 0xFFFF
        yield from ctx.printf(f"witness digest={digest}\n")
        return observations

    def worker(self, ctx, lock):
        observed = []
        for _ in range(self.iters):
            yield from ctx.compute(self.compute)
            yield from lock.acquire(ctx)
            value = ctx.mem_load(ctx.static_addr("counter"))
            ctx.mem_store(ctx.static_addr("counter"), value + 1)
            observed.append(value)
            yield from lock.release(ctx)
        return observed
