"""Integration tests spanning several subsystems at once."""


from repro.core.mvee import MVEE, run_mvee
from repro.perf.costs import CostModel

FAST = CostModel(monitor_syscall_overhead=2_000.0)


class TestAsmToMVEEPipeline:
    """Disassembly listing -> analysis -> instrumentation -> clean MVEE:
    the complete Section 4 workflow over the textual front end."""

    NGINX_LIKE_ASM = """
    .module customsrv
    .func spin_lock
    .loc srv.c 10
    .fact lk = &srvlock
    lock cmpxchg %eax, (lk)       ; site=srv.spinlock.lock.cmpxchg
    .func spin_unlock
    .loc srv.c 15
    .fact lk2 = &srvlock
    mov $0, (lk2)                 ; site=srv.spinlock.unlock.store
    .func bump_stat
    .fact st = &requests
    lock xadd %eax, (st)          ; site=srv.stats.xadd
    """

    def _server_like_program(self):
        from repro.guest.program import GuestProgram

        class CustomSyncProgram(GuestProgram):
            """Uses exactly the custom primitives the listing models."""

            static_vars = ("srvlock", "requests")

            def main(self, ctx):
                tids = yield from ctx.spawn_all(
                    self.worker, [() for _ in range(3)])
                witnesses = yield from ctx.join_all(tids)
                total = ctx.mem_load(ctx.static_addr("requests"))
                digest = hash(tuple(witnesses)) & 0xFFFF
                yield from ctx.printf(
                    f"requests={total} order={digest}\n")
                return total

            def worker(self, ctx):
                lock_addr = ctx.static_addr("srvlock")
                witness = 0
                for _ in range(40):
                    yield from ctx.compute(900)
                    while True:
                        old = yield from ctx.cas(
                            lock_addr, 0, 1,
                            site="srv.spinlock.lock.cmpxchg")
                        if old == 0:
                            break
                        yield from ctx.sched_yield()
                    observed = yield from ctx.fetch_add(
                        ctx.static_addr("requests"), 1,
                        site="srv.stats.xadd")
                    witness = hash((witness, observed)) & 0xFFFFFFFF
                    yield from ctx.atomic_store(
                        lock_addr, 0,
                        site="srv.spinlock.unlock.store")
                return witness

        return CustomSyncProgram()

    def test_analysis_output_makes_custom_sync_safe(self):
        from repro.analysis.asmtext import parse_asm
        from repro.analysis.identify import identify_sync_ops
        from repro.core.injection import instrument_sites

        module = parse_asm(self.NGINX_LIKE_ASM)
        report = identify_sync_ops(module)
        assert report.counts == (2, 0, 1)
        outcome = run_mvee(self._server_like_program(), variants=2,
                           agent="wall_of_clocks", seed=4, costs=FAST,
                           instrument=instrument_sites(report.sites()))
        assert outcome.verdict == "clean"
        assert "requests=120" in outcome.stdout

    def test_without_the_analysis_it_diverges(self):
        outcome = run_mvee(self._server_like_program(), variants=2,
                           agent="wall_of_clocks", seed=4, costs=FAST,
                           instrument=lambda site: False,
                           max_cycles=5e8)
        assert outcome.verdict != "clean"


class TestRecPlayOnBenchmarkTwin:
    def test_record_replay_a_parsec_twin(self):
        from repro.baselines.recplay import (
            record_execution,
            replay_execution,
        )
        from repro.workloads.synthetic import make_benchmark

        log, recorded = record_execution(
            make_benchmark("bodytrack", scale=0.05), seed=0)
        assert log.total > 0
        _, replayed = replay_execution(
            make_benchmark("bodytrack", scale=0.05), log, seed=6)
        assert replayed.stdout == recorded.stdout


class TestTimelineOnBenchmark:
    def test_slave_timeline_renders(self):
        from repro.perf.timeline import render_timeline, summarize_trace
        from repro.workloads.synthetic import make_benchmark

        mvee = MVEE(make_benchmark("volrend", scale=0.05), variants=2,
                    agent="wall_of_clocks", seed=2, costs=FAST,
                    record_sync_trace=True)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        trace = outcome.vms[1].sync_trace
        text = render_timeline(trace, label="volrend slave")
        assert "volrend slave" in text
        stats = summarize_trace(trace)
        assert sum(s["ops"] for s in stats.values()) == len(trace)


class TestPersistedGridRoundTrip:
    def test_grid_to_disk_to_table(self, tmp_path):
        from repro.experiments.persist import load_results, save_results
        from repro.experiments.runner import run_benchmark_grid
        from repro.experiments.tables import table1

        results = run_benchmark_grid(benchmarks=["x264"],
                                     variant_counts=(2,), scale=0.1)
        path = tmp_path / "grid.json"
        save_results(results, path, metadata={"scale": 0.1})
        reloaded = load_results(path)
        assert table1(results) == table1(reloaded)


class TestCovertChannelUnderRelaxedMonitor:
    def test_trylock_channel_still_works(self):
        """The §5.4 channels abuse replication itself; they are monitor-
        agnostic (VARAN replicates results just the same)."""
        from repro.diversity.spec import DiversitySpec
        from repro.workloads.attacks import TrylockCovertChannel

        outcome = run_mvee(TrylockCovertChannel(), variants=2,
                           agent="wall_of_clocks", seed=7, costs=FAST,
                           monitor_kind="relaxed",
                           diversity=DiversitySpec(aslr=True, seed=2))
        assert outcome.verdict == "clean"
        master = outcome.vms[0].threads["main"].result
        slave = outcome.vms[1].threads["main"].result
        assert slave["decoded"] == master["my_secret"]
