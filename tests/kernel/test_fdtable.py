"""Tests for lowest-free FD allocation — the Section 3.1 hazard."""

import pytest

from repro.errors import SyscallError
from repro.kernel.fdtable import FDTable


class TestFDTable:
    def test_stdio_preinstalled(self):
        table = FDTable()
        assert table.open_fds() == [0, 1, 2]
        assert table.get(1).kind == "stream"

    def test_lowest_free_allocation(self):
        table = FDTable()
        first = table.install("file", object())
        second = table.install("file", object())
        assert (first.fd, second.fd) == (3, 4)

    def test_reuses_lowest_closed_fd(self):
        table = FDTable()
        table.install("file", object())   # 3
        table.install("file", object())   # 4
        table.close(3)
        assert table.install("file", object()).fd == 3

    def test_allocation_order_determines_numbers(self):
        """Two tables handed the same objects in different orders assign
        different FDs — the root cause of cross-variant FD divergence."""
        obj_a, obj_b = object(), object()
        table1 = FDTable()
        table2 = FDTable()
        fd_a1 = table1.install("file", obj_a).fd
        fd_b1 = table1.install("file", obj_b).fd
        fd_b2 = table2.install("file", obj_b).fd
        fd_a2 = table2.install("file", obj_a).fd
        assert fd_a1 == fd_b2 and fd_b1 == fd_a2
        assert fd_a1 != fd_a2

    def test_get_closed_fd_is_ebadf(self):
        table = FDTable()
        fd = table.install("file", object()).fd
        table.close(fd)
        with pytest.raises(SyscallError) as excinfo:
            table.get(fd)
        assert excinfo.value.errno_name == "EBADF"

    def test_dup_targets_lowest_free(self):
        table = FDTable()
        source = table.install("file", object())
        table.close(0)
        duplicate = table.dup(source.fd)
        assert duplicate.fd == 0
        assert duplicate.obj is source.obj

    def test_close_returns_entry(self):
        table = FDTable()
        entry = table.install("file", object())
        closed = table.close(entry.fd)
        assert closed is entry

    def test_contains_and_len(self):
        table = FDTable()
        assert 1 in table
        assert len(table) == 3
