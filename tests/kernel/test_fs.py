"""Tests for the shared virtual disk, files, and pipes."""

import pytest

from repro.errors import SyscallError
from repro.kernel.fs import Pipe, VirtualFile


class TestVirtualFile:
    def test_read_within_bounds(self):
        vfile = VirtualFile("/a", bytearray(b"hello world"))
        assert vfile.read_at(0, 5) == b"hello"
        assert vfile.read_at(6, 100) == b"world"

    def test_read_past_end_returns_empty(self):
        vfile = VirtualFile("/a", bytearray(b"abc"))
        assert vfile.read_at(10, 4) == b""

    def test_write_extends_file(self):
        vfile = VirtualFile("/a")
        assert vfile.write_at(4, b"xy") == 2
        assert vfile.size == 6
        assert vfile.read_at(0, 6) == b"\x00\x00\x00\x00xy"

    def test_overwrite_in_place(self):
        vfile = VirtualFile("/a", bytearray(b"abcdef"))
        vfile.write_at(2, b"ZZ")
        assert bytes(vfile.data) == b"abZZef"


class TestVirtualDisk:
    def test_add_and_lookup(self, disk):
        disk.add_file("/x", b"data")
        assert disk.lookup("/x").read_at(0, 4) == b"data"
        assert disk.lookup("/missing") is None

    def test_create_is_idempotent(self, disk):
        first = disk.create("/y")
        first.write_at(0, b"keep")
        second = disk.create("/y")
        assert second is first
        assert bytes(second.data) == b"keep"

    def test_unlink_removes(self, disk):
        disk.add_file("/z", b"")
        disk.unlink("/z")
        assert not disk.exists("/z")

    def test_unlink_missing_raises_enoent(self, disk):
        with pytest.raises(SyscallError) as excinfo:
            disk.unlink("/nope")
        assert excinfo.value.errno_name == "ENOENT"

    def test_paths_sorted(self, disk):
        disk.add_file("/b")
        disk.add_file("/a")
        assert disk.paths() == ["/a", "/b"]

    def test_streams_capture_output(self, disk):
        disk.append_stream("stdout", b"hello ")
        disk.append_stream("stdout", b"world")
        assert disk.stream_text("stdout") == "hello world"

    def test_unknown_stream_is_empty(self, disk):
        assert disk.stream_text("whatever") == ""


class TestPipe:
    def test_write_then_read(self):
        pipe = Pipe(1)
        pipe.write(b"abcdef")
        assert pipe.read(4) == b"abcd"
        assert pipe.read(4) == b"ef"

    def test_empty_open_pipe_would_block(self):
        pipe = Pipe(1)
        assert pipe.read(4) is None

    def test_eof_after_writers_close(self):
        pipe = Pipe(1)
        pipe.write(b"xy")
        pipe.write_ends = 0
        assert pipe.read(10) == b"xy"
        assert pipe.read(10) == b""

    def test_write_without_readers_is_epipe(self):
        pipe = Pipe(1)
        pipe.read_ends = 0
        with pytest.raises(SyscallError) as excinfo:
            pipe.write(b"data")
        assert excinfo.value.errno_name == "EPIPE"
