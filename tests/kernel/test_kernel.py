"""Tests for the per-variant virtual kernel's syscall semantics."""

import pytest

from repro.errors import SyscallError
from repro.kernel.fs import VirtualDisk
from repro.kernel.kernel import ENOENT, ENOSYS, Blocked, VirtualKernel
from repro.kernel.net import Network
from repro.kernel.vmem import Protection


class TestFileSyscalls:
    def test_open_read_close(self, kernel, disk):
        disk.add_file("/in.txt", b"payload")
        fd = kernel.execute("open", ("/in.txt", "r"), "t")
        assert fd == 3
        assert kernel.execute("read", (fd, 4), "t") == b"payl"
        assert kernel.execute("read", (fd, 4), "t") == b"oad"
        assert kernel.execute("close", (fd,), "t") == 0

    def test_open_missing_is_enoent(self, kernel):
        assert kernel.execute("open", ("/ghost", "r"), "t") == ENOENT

    def test_open_for_write_creates(self, kernel, disk):
        fd = kernel.execute("open", ("/out.txt", "w"), "t")
        kernel.execute("write", (fd, b"hi"), "t")
        assert disk.lookup("/out.txt").read_at(0, 2) == b"hi"

    def test_write_str_is_encoded(self, kernel, disk):
        kernel.execute("write", (1, "héllo"), "t")
        assert disk.stream_text("stdout") == "héllo"

    def test_lseek_whences(self, kernel, disk):
        disk.add_file("/f", b"0123456789")
        fd = kernel.execute("open", ("/f", "r"), "t")
        assert kernel.execute("lseek", (fd, 4, "set"), "t") == 4
        assert kernel.execute("lseek", (fd, 2, "cur"), "t") == 6
        assert kernel.execute("lseek", (fd, -1, "end"), "t") == 9
        with pytest.raises(SyscallError):
            kernel.execute("lseek", (fd, 0, "bogus"), "t")

    def test_stat(self, kernel, disk):
        disk.add_file("/f", b"abc")
        assert kernel.execute("stat", ("/f",), "t") == 3
        assert kernel.execute("stat", ("/ghost",), "t") == ENOENT

    def test_dup_shares_object(self, kernel, disk):
        disk.add_file("/f", b"abc")
        fd = kernel.execute("open", ("/f", "r"), "t")
        dup_fd = kernel.execute("dup", (fd,), "t")
        assert dup_fd != fd
        assert kernel.execute("read", (dup_fd, 3), "t") == b"abc"


class TestPipeSyscalls:
    def test_pipe_roundtrip(self, kernel):
        read_fd, write_fd = kernel.execute("pipe", (), "t")
        kernel.execute("write", (write_fd, b"msg"), "t")
        assert kernel.execute("read", (read_fd, 10), "t") == b"msg"

    def test_pipe_read_blocks_when_empty(self, kernel):
        read_fd, _ = kernel.execute("pipe", (), "t")
        outcome = kernel.execute("read", (read_fd, 10), "t")
        assert isinstance(outcome, Blocked)
        assert outcome.retry

    def test_pipe_eof_after_close(self, kernel):
        read_fd, write_fd = kernel.execute("pipe", (), "t")
        kernel.execute("close", (write_fd,), "t")
        assert kernel.execute("read", (read_fd, 10), "t") == b""

    def test_pipe_write_wakes_readers(self, kernel):
        read_fd, write_fd = kernel.execute("pipe", (), "t")
        kernel.execute("write", (write_fd, b"x"), "t")
        assert kernel.pending_wakeups  # the pipe key wake


class TestMemorySyscalls:
    def test_brk_mmap_mprotect(self, kernel):
        base = kernel.execute("brk", (None,), "t")
        assert kernel.execute("brk", (base + 64,), "t") == base + 64
        start = kernel.execute("mmap", (4096,), "t")
        assert kernel.execute("mprotect", (start, Protection.READ),
                              "t") == 0
        assert kernel.execute("munmap", (start,), "t") == 0


class TestFutexSyscalls:
    def test_wait_blocks_when_value_matches(self, kernel):
        addr = kernel.addr_space.alloc_static()
        kernel.addr_space.store(addr, 7)
        outcome = kernel.execute("futex_wait", (addr, 7), "t1")
        assert isinstance(outcome, Blocked)
        assert not outcome.retry and outcome.wake_result == 0

    def test_wait_returns_eagain_on_mismatch(self, kernel):
        addr = kernel.addr_space.alloc_static()
        kernel.addr_space.store(addr, 3)
        assert kernel.execute("futex_wait", (addr, 7), "t1") == -11

    def test_wake_releases_fifo(self, kernel):
        addr = kernel.addr_space.alloc_static()
        kernel.execute("futex_wait", (addr, 0), "t1")
        kernel.execute("futex_wait", (addr, 0), "t2")
        assert kernel.execute("futex_wake", (addr, 1), "t3") == 1
        assert kernel.pending_wakeups[-1] == ("thread", "t1")

    def test_wake_with_no_waiters(self, kernel):
        addr = kernel.addr_space.alloc_static()
        assert kernel.execute("futex_wake", (addr, 1), "t") == 0


class TestTimeAndIdentity:
    def test_gettimeofday_epoch(self, kernel):
        seconds, microseconds = kernel.execute("gettimeofday", (), "t")
        assert seconds >= 1_490_000_000
        assert 0 <= microseconds < 1_000_000

    def test_rdtsc_tracks_bound_clock(self, kernel):
        kernel.clock.bind(lambda: 12345.0)
        assert kernel.execute("rdtsc", (), "t") == 12345

    def test_getpid_constant(self, kernel):
        assert kernel.execute("getpid", (), "t") == 4242

    def test_nanosleep_blocks_with_timeout(self, kernel):
        outcome = kernel.execute("nanosleep", (0.001,), "t")
        assert isinstance(outcome, Blocked)
        assert outcome.timeout_cycles == pytest.approx(1_000_000)

    def test_unknown_syscall_is_enosys(self, kernel):
        assert kernel.execute("does_not_exist", (), "t") == ENOSYS

    def test_mvee_get_role_is_enosys_natively(self, kernel):
        assert kernel.execute("mvee_get_role", (), "t") == ENOSYS


class TestNetworkSyscalls:
    def _server(self):
        disk = VirtualDisk()
        net = Network()
        kernel = VirtualKernel(disk, network=net, role="native")
        sock = kernel.execute("socket", (), "t")
        kernel.execute("bind", (sock, 8080), "t")
        kernel.execute("listen", (sock,), "t")
        return kernel, net, sock

    def test_accept_blocks_then_succeeds(self):
        kernel, net, sock = self._server()
        outcome = kernel.execute("accept", (sock,), "t")
        assert isinstance(outcome, Blocked)
        conn = net.client_connect(8080)
        fd = kernel.execute("accept", (sock,), "t")
        assert isinstance(fd, int)
        net.client_send(conn, b"GET /")
        assert kernel.execute("recv", (fd, 16), "t") == b"GET /"
        kernel.execute("send", (fd, b"200 OK"), "t")
        assert net.client_recv(conn) == b"200 OK"

    def test_execve_is_recorded(self, kernel):
        kernel.execute("execve", ("/bin/sh", ("-c", "id")), "t")
        assert kernel.exec_log[0].path == "/bin/sh"

    def test_replicate_read_advances_offset(self, disk):
        disk.add_file("/f", b"abcdef")
        kernel = VirtualKernel(disk, role="slave")
        fd = kernel.execute("open", ("/f", "r"), "t")
        kernel.apply_replicated("read", (fd, 3), b"abc")
        assert kernel.fdt.get(fd).offset == 3

    def test_replicate_accept_materializes_fd(self, disk):
        kernel = VirtualKernel(disk, role="slave")
        sock = kernel.execute("socket", (), "t")
        kernel.execute("bind", (sock, 80), "t")
        kernel.execute("listen", (sock,), "t")   # slave: no net wiring
        before = set(kernel.fdt.open_fds())
        kernel.apply_replicated("accept", (sock,), 4)
        created = set(kernel.fdt.open_fds()) - before
        assert len(created) == 1
        assert kernel.fdt.get(created.pop()).kind == "conn_sock"
