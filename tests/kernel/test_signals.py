"""Tests for the virtual signal subsystem."""

import pytest

from repro.kernel.kernel import Blocked
from repro.kernel.signals import SIGUSR1, SIGUSR2, SignalState


class TestSignalState:
    def test_send_without_waiter_pends(self):
        state = SignalState()
        assert state.send(SIGUSR1) is None
        assert state.pending[SIGUSR1] == 1

    def test_send_wakes_fifo_waiter(self):
        state = SignalState()
        state.add_waiter(SIGUSR1, "t1")
        state.add_waiter(SIGUSR1, "t2")
        assert state.send(SIGUSR1) == "t1"
        assert state.send(SIGUSR1) == "t2"
        assert state.send(SIGUSR1) is None

    def test_signals_do_not_cross_numbers(self):
        state = SignalState()
        state.add_waiter(SIGUSR2, "t1")
        assert state.send(SIGUSR1) is None
        assert state.waiting_threads() == ["t1"]

    def test_try_consume(self):
        state = SignalState()
        state.send(SIGUSR1)
        assert state.try_consume(SIGUSR1)
        assert not state.try_consume(SIGUSR1)


class TestSignalSyscalls:
    def test_sigwait_blocks_until_kill(self, kernel):
        outcome = kernel.execute("sigwait", (SIGUSR1,), "waiter")
        assert isinstance(outcome, Blocked)
        assert outcome.wake_result == SIGUSR1
        kernel.execute("kill", (SIGUSR1,), "sender")
        assert kernel.pending_wakeups[-1] == ("thread", "waiter")

    def test_sigwait_consumes_pending_immediately(self, kernel):
        kernel.execute("kill", (SIGUSR1,), "sender")
        assert kernel.execute("sigwait", (SIGUSR1,), "w") == SIGUSR1

    def test_sigpending_counts(self, kernel):
        assert kernel.execute("sigpending", (SIGUSR1,), "t") == 0
        kernel.execute("kill", (SIGUSR1,), "t")
        kernel.execute("kill", (SIGUSR1,), "t")
        assert kernel.execute("sigpending", (SIGUSR1,), "t") == 2


class TestSignalPrograms:
    def _logger_program(self, signals_to_send=5):
        from repro.guest.program import GuestProgram

        class SignalDriven(GuestProgram):
            """§6's pattern: a thread waiting in an infinite loop for an
            asynchronous event, making no sync ops at all."""

            static_vars = ()

            def main(self, ctx):
                logger = yield from ctx.spawn(self.logger)
                for _ in range(signals_to_send):
                    yield from ctx.compute(3_000)
                    yield from ctx.kill(SIGUSR1)
                result = yield from ctx.join(logger)
                yield from ctx.printf(f"logged {result} events\n")
                return result

            def logger(self, ctx):
                handled = 0
                while handled < signals_to_send:
                    sig = yield from ctx.sigwait(SIGUSR1)
                    assert sig == SIGUSR1
                    handled += 1
                    yield from ctx.compute(500)
                return handled

        return SignalDriven()

    def test_signal_driven_program_native(self):
        from repro.run import run_native
        result = run_native(self._logger_program(), seed=2)
        assert "logged 5 events" in result.stdout

    @pytest.mark.parametrize("agent", [None, "wall_of_clocks"])
    def test_signal_replication_under_mvee(self, agent, fast_costs):
        from repro.core.mvee import run_mvee
        outcome = run_mvee(self._logger_program(), variants=2,
                           agent=agent, seed=2, costs=fast_costs)
        assert outcome.verdict == "clean"
        assert outcome.stdout.count("logged 5 events") == 1

    def test_slave_never_sleeps_in_sigwait(self, fast_costs):
        from repro.core.mvee import MVEE
        mvee = MVEE(self._logger_program(), variants=2, agent=None,
                    seed=2, costs=fast_costs)
        outcome = mvee.run()
        assert outcome.verdict == "clean"
        assert outcome.vms[1].kernel.signals.waiting_threads() == []

    def test_dmt_wedges_on_signal_waiting_thread(self, fast_costs):
        """Section 6: DMT approaches that require every thread to reach a
        synchronization point are incompatible with threads that wait
        forever for asynchronous events.  Our Kendo-style baseline treats
        the sigwait-blocked logger as a participant with a frozen clock,
        so the workers' sync ops can never become eligible."""
        from repro.core.mvee import run_mvee
        from repro.guest.program import GuestProgram
        from repro.guest.sync import SpinLock

        class MixedProgram(GuestProgram):
            static_vars = ("lock", "counter")

            def main(self, ctx):
                logger = yield from ctx.spawn(self.logger)
                workers = yield from ctx.spawn_all(
                    self.worker, [() for _ in range(2)])
                yield from ctx.join_all(workers)
                yield from ctx.kill(SIGUSR1)  # release the logger
                yield from ctx.join(logger)
                return 0

            def logger(self, ctx):
                yield from ctx.sigwait(SIGUSR1)
                return 0

            def worker(self, ctx):
                lock = SpinLock(ctx.static_addr("lock"))
                for _ in range(20):
                    yield from ctx.compute(1_000)
                    yield from lock.acquire(ctx)
                    addr = ctx.static_addr("counter")
                    ctx.mem_store(addr, ctx.mem_load(addr) + 1)
                    yield from lock.release(ctx)
                return 0

        dmt = run_mvee(MixedProgram(), variants=2, agent="dmt", seed=2,
                       costs=fast_costs, max_cycles=3e8)
        assert dmt.verdict == "deadlock"
        # The paper's agents do not quantify over blocked threads:
        woc = run_mvee(MixedProgram(), variants=2,
                       agent="wall_of_clocks", seed=2, costs=fast_costs)
        assert woc.verdict == "clean"
