"""Tests for the virtual address space."""

import pytest

from repro.errors import MemoryFault, SyscallError
from repro.kernel.vmem import (
    PAGE_SIZE,
    AddressSpace,
    LayoutBases,
    Protection,
    page_align_up,
)


class TestPageAlign:
    def test_aligns_up(self):
        assert page_align_up(1) == PAGE_SIZE
        assert page_align_up(PAGE_SIZE) == PAGE_SIZE
        assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    def test_zero(self):
        assert page_align_up(0) == 0


class TestBrk:
    def test_query_returns_current(self):
        space = AddressSpace()
        assert space.brk(None) == space.brk_start

    def test_grow_and_store(self):
        space = AddressSpace()
        base = space.brk(None)
        new_end = space.brk(base + 100)
        assert new_end == base + 100
        space.store(base + 8, 42)
        assert space.load(base + 8) == 42

    def test_shrink_below_start_is_enomem(self):
        space = AddressSpace()
        with pytest.raises(SyscallError):
            space.brk(space.brk_start - 1)

    def test_heap_access_beyond_brk_faults(self):
        space = AddressSpace()
        with pytest.raises(MemoryFault):
            space.load(space.brk_start + PAGE_SIZE * 2)


class TestMmap:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        first = space.mmap(PAGE_SIZE)
        second = space.mmap(PAGE_SIZE)
        assert second >= first + PAGE_SIZE

    def test_allocation_order_affects_addresses(self):
        """Two spaces mapping in different orders get different addresses
        for the 'same' mapping — why mmap must be cross-variant ordered."""
        space1, space2 = AddressSpace(), AddressSpace()
        a1 = space1.mmap(PAGE_SIZE)           # small first
        b1 = space1.mmap(4 * PAGE_SIZE)
        b2 = space2.mmap(4 * PAGE_SIZE)       # big first
        a2 = space2.mmap(PAGE_SIZE)
        assert a1 != a2 and b1 != b2

    def test_munmap_then_access_faults(self):
        space = AddressSpace()
        start = space.mmap(PAGE_SIZE)
        space.store(start, 7)
        space.munmap(start)
        with pytest.raises(MemoryFault):
            space.load(start)

    def test_munmap_unknown_region_raises(self):
        space = AddressSpace()
        with pytest.raises(SyscallError):
            space.munmap(0xDEAD0000)

    def test_mmap_rejects_nonpositive_size(self):
        space = AddressSpace()
        with pytest.raises(SyscallError):
            space.mmap(0)


class TestProtection:
    def test_mprotect_blocks_writes(self):
        space = AddressSpace()
        start = space.mmap(PAGE_SIZE)
        space.mprotect(start, Protection.READ)
        assert space.load(start) == 0
        with pytest.raises(MemoryFault):
            space.store(start, 1)

    def test_mprotect_unmapped_raises(self):
        space = AddressSpace()
        with pytest.raises(SyscallError):
            space.mprotect(0x1, Protection.RW)

    def test_code_region_not_writable(self):
        space = AddressSpace()
        with pytest.raises(MemoryFault):
            space.store(space.bases.code_base, 0x90)


class TestStatics:
    def test_statics_are_sequential_and_aligned(self):
        space = AddressSpace()
        first = space.alloc_static(8)
        second = space.alloc_static(8)
        assert second == first + 8
        assert first % 8 == 0

    def test_diversified_bases_move_statics(self):
        plain = AddressSpace()
        shifted = AddressSpace(LayoutBases(static_base=0x0100_0000))
        assert plain.alloc_static() != shifted.alloc_static()

    def test_same_declaration_order_same_offsets(self):
        """The k-th static has the same offset in every variant — the
        logical-variable correspondence diversity must preserve."""
        space_a = AddressSpace(LayoutBases(static_base=0x0100_0000))
        space_b = AddressSpace(LayoutBases(static_base=0x0200_0000))
        offsets_a = [space_a.alloc_static() - 0x0100_0000
                     for _ in range(5)]
        offsets_b = [space_b.alloc_static() - 0x0200_0000
                     for _ in range(5)]
        assert offsets_a == offsets_b


class TestSnapshotPeek:
    def test_snapshot_contains_writes(self):
        space = AddressSpace()
        addr = space.alloc_static()
        space.store(addr, 99)
        assert space.snapshot()[addr] == 99

    def test_peek_skips_protection(self):
        space = AddressSpace()
        start = space.mmap(PAGE_SIZE)
        space.store(start, 5)
        space.mprotect(start, Protection.NONE)
        assert space.peek(start) == 5
