"""Divergence forensics: bundle capture, round-trip, and tail diffing.

The reference workload is :func:`repro.core.injection.make_divergence_probe`:
every variant issues the same monitored calls except that one variant
substitutes a different syscall at a known call index.  The bundle's
event tails must first differ at exactly that call.
"""

import pytest

from repro.core.injection import make_divergence_probe
from repro.core.mvee import run_mvee
from repro.obs import (
    DivergenceBundle,
    ObsHub,
    bundle_to_chrome,
    diff_tails,
    summarize_bundle,
)

AT_CALL = 3


@pytest.fixture(scope="module")
def diverged():
    """One observed run of the probe, shared across this module."""
    hub = ObsHub()
    outcome = run_mvee(make_divergence_probe(at_call=AT_CALL),
                       variants=2, agent="wall_of_clocks", seed=1,
                       obs=hub)
    return hub, outcome


class TestProbe:
    def test_at_call_validated(self):
        with pytest.raises(ValueError, match="at_call"):
            make_divergence_probe(at_call=6, benign_calls=6)
        with pytest.raises(ValueError):
            make_divergence_probe(at_call=-1)

    def test_probe_diverges_at_injected_call(self, diverged):
        _, outcome = diverged
        assert outcome.verdict == "divergence"
        assert outcome.divergence.kind.value == "syscall_mismatch"
        assert outcome.divergence.syscall_seq == AT_CALL


class TestBundleCapture:
    def test_outcome_carries_bundle(self, diverged):
        _, outcome = diverged
        bundle = outcome.obs_bundle
        assert bundle is not None
        assert bundle.report["kind"] == "syscall_mismatch"
        assert bundle.report["syscall_seq"] == AT_CALL
        assert bundle.config["agent"] == "wall_of_clocks"
        assert bundle.config["seed"] == 1

    def test_tails_cover_every_variant(self, diverged):
        _, outcome = diverged
        tails = outcome.obs_bundle.tails
        assert sorted(tails) == [0, 1]
        assert all(tails[variant] for variant in tails)

    def test_in_flight_names_the_mismatched_call(self, diverged):
        _, outcome = diverged
        in_flight = outcome.obs_bundle.in_flight
        assert in_flight[0]["main"]["seq"] == AT_CALL
        assert in_flight[1]["main"]["seq"] == AT_CALL
        assert in_flight[0]["main"]["name"] == "gettimeofday"
        assert in_flight[1]["main"]["name"] == "getpid"

    def test_metrics_snapshot_included(self, diverged):
        _, outcome = diverged
        metrics = outcome.obs_bundle.metrics
        assert metrics["divergence.total"] == 1
        assert metrics["divergence.kind.syscall_mismatch"] == 1


class TestDiffTails:
    def test_first_difference_is_the_injected_call(self, diverged):
        _, outcome = diverged
        assert diff_tails(outcome.obs_bundle) == {
            "main": {"seq": AT_CALL,
                     "calls": {0: "gettimeofday", 1: "getpid"}}}

    @pytest.mark.parametrize("at_call", [0, 5])
    def test_tracks_injection_point(self, at_call):
        hub = ObsHub()
        outcome = run_mvee(make_divergence_probe(at_call=at_call),
                           variants=2, agent="wall_of_clocks", seed=1,
                           obs=hub)
        assert outcome.verdict == "divergence"
        divergences = diff_tails(outcome.obs_bundle)
        assert divergences["main"]["seq"] == at_call

    def test_identical_tails_report_nothing(self):
        bundle = DivergenceBundle(report={}, tails={
            0: [{"name": "open", "cat": "call", "thread": "main",
                 "args": {"seq": 0}}],
            1: [{"name": "open", "cat": "call", "thread": "main",
                 "args": {"seq": 0}}]})
        assert diff_tails(bundle) == {}


class TestRoundTrip:
    def test_save_load_preserves_bundle(self, diverged, tmp_path):
        _, outcome = diverged
        bundle = outcome.obs_bundle
        path = tmp_path / "bundle.json"
        bundle.save(path)
        loaded = DivergenceBundle.load(path)
        assert loaded.to_json_dict() == bundle.to_json_dict()
        # variant keys come back as ints, so diffing still works
        assert diff_tails(loaded) == diff_tails(bundle)

    def test_summarize(self, diverged):
        _, outcome = diverged
        text = summarize_bundle(outcome.obs_bundle)
        assert "syscall_mismatch" in text
        assert f"first differing call: thread main call #{AT_CALL}" in text

    def test_bundle_to_chrome(self, diverged):
        _, outcome = diverged
        chrome = bundle_to_chrome(outcome.obs_bundle)
        events = chrome["traceEvents"]
        assert {event["pid"] for event in events} == {0, 1}
        assert any(event.get("name") == "getpid" for event in events)
        # timestamps are sorted so Perfetto renders a coherent timeline
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)
