"""Backward compatibility: ``repro obs summarize`` on old bundles.

Bundles written before the fault/race/deadlock sections existed (and
before every tail event reliably carried ``thread``/``name``) must
still summarize — missing keys shorten the output, they never raise.
The fixture is a frozen pre-race-era bundle with deliberately partial
records; this is the regression pin for that contract.
"""

from __future__ import annotations

import os

from repro.cli import main
from repro.obs.forensics import (
    DivergenceBundle,
    diff_tails,
    summarize_bundle,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "bundle_pre_race_era.json")


class TestOldBundleSummaries:
    def test_fixture_loads(self):
        bundle = DivergenceBundle.load(FIXTURE)
        assert bundle.report["kind"] == "syscall_mismatch"
        # Sections the old format never wrote default to empty.
        assert bundle.faults == []
        assert bundle.races == []
        assert bundle.deadlocks == []
        assert bundle.recovery == []

    def test_summarize_degrades_gracefully(self):
        text = summarize_bundle(DivergenceBundle.load(FIXTURE))
        assert "divergence bundle" in text
        assert "kind    : syscall_mismatch" in text
        # The complete in-flight record renders; partial ones render
        # with placeholders or are skipped — never a KeyError.
        assert "in-flight v0 t1: write (call #?)" in text
        assert "in-flight v0 t2: ? (call #4)" in text
        # Omitted sections stay omitted.
        assert "faults injected" not in text
        assert "races detected" not in text
        assert "deadlock cycle" not in text

    def test_diff_tails_skips_partial_events(self):
        divergences = diff_tails(DivergenceBundle.load(FIXTURE))
        # seq 9: v0 saw "write", v1's event has no name -> "?" differs,
        # so the first differing call is still found despite the holes.
        assert divergences["t1"]["seq"] == 9
        assert divergences["t1"]["calls"][0] == "write"

    def test_cli_summarize_exits_zero(self, capsys):
        assert main(["obs", "summarize", FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "divergence bundle" in out
