"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(9.0)
        gauge.set(2.0)
        assert gauge.snapshot() == {"value": 2.0, "max": 9.0}


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(5.0)     # first bucket
        histogram.observe(50.0)    # second bucket
        histogram.observe(500.0)   # overflow
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_10": 1, "le_100": 1}
        assert snap["overflow"] == 1
        assert snap["count"] == 3
        assert snap["sum"] == 555.0
        assert snap["max"] == 500.0
        assert snap["mean"] == pytest.approx(185.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_empty_snapshot_edges_pinned(self):
        """An empty histogram's summary stats are all 0.0 — including
        min, which must not report a sentinel like +inf."""
        snap = Histogram("h", bounds=(10.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["mean"] == 0.0

    def test_min_tracks_smallest_observation(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(50.0)
        assert histogram.snapshot()["min"] == 50.0
        histogram.observe(5.0)
        histogram.observe(500.0)
        snap = histogram.snapshot()
        assert snap["min"] == 5.0
        assert snap["max"] == 500.0

    def test_percentile_empty_is_zero(self):
        histogram = Histogram("h", bounds=(10.0,))
        for p in (0.0, 50.0, 100.0):
            assert histogram.percentile(p) == 0.0

    def test_percentile_edges_are_exact_observations(self):
        """p0/p100 bypass bucket interpolation: they return the exact
        observed min/max even when those fall inside (or beyond) the
        bucket bounds."""
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(7.0)
        histogram.observe(42.0)
        histogram.observe(650.0)   # overflow bucket
        assert histogram.percentile(0.0) == 7.0
        assert histogram.percentile(100.0) == 650.0

    def test_interior_percentile_uses_bucket_upper_bound(self):
        histogram = Histogram("h", bounds=(10.0, 100.0, 1000.0))
        for value in (5.0, 50.0, 51.0, 52.0, 900.0):
            histogram.observe(value)
        assert histogram.percentile(20.0) == 10.0
        assert histogram.percentile(40.0) == 100.0

    def test_interior_percentile_clamped_to_observed_max(self):
        histogram = Histogram("h", bounds=(10.0, 1000.0))
        histogram.observe(20.0)
        histogram.observe(30.0)
        # Both land in the le_1000 bucket; its upper bound exceeds the
        # observed max, so the estimate clamps.
        assert histogram.percentile(50.0) == 30.0

    def test_percentile_of_overflow_bucket_is_max(self):
        histogram = Histogram("h", bounds=(10.0,))
        histogram.observe(500.0)
        histogram.observe(900.0)
        assert histogram.percentile(99.0) == 900.0

    def test_percentile_out_of_range_raises(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError, match="out of range"):
            histogram.percentile(-1.0)
        with pytest.raises(ValueError, match="out of range"):
            histogram.percentile(101.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1 and "a" in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.last").inc(2)
            registry.gauge("a.first").set(1.5)
            registry.histogram("m.mid").observe(250.0)
            return registry

        one, two = build(), build()
        assert list(one.snapshot()) == ["a.first", "m.mid", "z.last"]
        assert one.to_json() == two.to_json()
        assert json.loads(one.to_json())["z.last"] == 2

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text()) == {"c": 1}

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(3)
        registry.gauge("occupancy").set(7)
        registry.histogram("lat").observe(1_500.0)
        text = registry.render_text()
        assert "calls = 3" in text
        assert "occupancy = 7 (max 7)" in text
        assert "lat: n=1 mean=1500.0" in text

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == "(no metrics recorded)"
