"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(9.0)
        gauge.set(2.0)
        assert gauge.snapshot() == {"value": 2.0, "max": 9.0}


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(5.0)     # first bucket
        histogram.observe(50.0)    # second bucket
        histogram.observe(500.0)   # overflow
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_10": 1, "le_100": 1}
        assert snap["overflow"] == 1
        assert snap["count"] == 3
        assert snap["sum"] == 555.0
        assert snap["max"] == 500.0
        assert snap["mean"] == pytest.approx(185.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1 and "a" in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.last").inc(2)
            registry.gauge("a.first").set(1.5)
            registry.histogram("m.mid").observe(250.0)
            return registry

        one, two = build(), build()
        assert list(one.snapshot()) == ["a.first", "m.mid", "z.last"]
        assert one.to_json() == two.to_json()
        assert json.loads(one.to_json())["z.last"] == 2

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text()) == {"c": 1}

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(3)
        registry.gauge("occupancy").set(7)
        registry.histogram("lat").observe(1_500.0)
        text = registry.render_text()
        assert "calls = 3" in text
        assert "occupancy = 7 (max 7)" in text
        assert "lat: n=1 mean=1500.0" in text

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == "(no metrics recorded)"
