"""End-to-end properties of the observability layer.

Pins the two contracts the subsystem is built around:

* **Zero perturbation** — attaching an :class:`~repro.obs.ObsHub` must
  not change the simulated timeline by a single cycle (hooks never
  charge simulated time).
* **Determinism** — the same seed and configuration produce
  byte-identical metrics snapshots and equal event streams.

Plus the paper-facing acceptance check: a wall-of-clocks nginx run's
Chrome trace shows rendezvous, clock, and buffer-occupancy activity for
every variant.
"""

from collections import defaultdict

from repro.core.mvee import MVEE, run_mvee
from repro.obs import ObsHub
from repro.workloads.nginx import (
    NginxConfig,
    NginxServer,
    TrafficStats,
    make_traffic,
)
from repro.workloads.synthetic import make_benchmark


def run_fft(obs=None, seed=1):
    return run_mvee(make_benchmark("fft", scale=0.05), variants=2,
                    agent="wall_of_clocks", seed=seed, obs=obs)


class TestZeroPerturbation:
    def test_observed_run_has_identical_timeline(self):
        plain = run_fft()
        hub = ObsHub()
        observed = run_fft(obs=hub)
        assert plain.verdict == observed.verdict == "clean"
        assert observed.cycles == plain.cycles  # exact, not approx
        assert len(hub.tracer.events) > 0

    def test_hooks_default_to_disabled(self):
        outcome = run_fft()
        assert outcome.obs is None and outcome.obs_bundle is None
        assert outcome.machine.obs is None
        assert outcome.monitor.obs is None
        for vm in outcome.vms:
            assert vm.kernel.futexes.obs is None


class TestDeterminism:
    def test_metrics_snapshot_byte_identical_per_seed(self):
        one, two = ObsHub(), ObsHub()
        run_fft(obs=one)
        run_fft(obs=two)
        assert one.metrics.to_json() == two.metrics.to_json()
        assert ([e.to_dict() for e in one.tracer.events]
                == [e.to_dict() for e in two.tracer.events])

    def test_different_seed_different_trace(self):
        one, two = ObsHub(), ObsHub()
        run_fft(obs=one, seed=1)
        run_fft(obs=two, seed=2)
        assert ([e.to_dict() for e in one.tracer.events]
                != [e.to_dict() for e in two.tracer.events])


class TestNginxTraceCoverage:
    """The §5.5 server under wall_of_clocks, fully observed."""

    def run_observed(self, fast_costs):
        config = NginxConfig(pool_threads=8, connections=6,
                             requests_per_connection=3,
                             work_cycles=20_000.0)
        stats = TrafficStats()
        hub = ObsHub()
        mvee = MVEE(NginxServer(config), variants=2,
                    agent="wall_of_clocks", seed=1, costs=fast_costs,
                    instrument=lambda site: True, with_network=True,
                    traffic=make_traffic(config, 0.0, stats), obs=hub)
        return mvee.run(), hub

    def test_trace_covers_every_variant(self, fast_costs):
        outcome, hub = self.run_observed(fast_costs)
        assert outcome.verdict == "clean"
        cats = defaultdict(set)
        names = defaultdict(set)
        for event in hub.tracer.events:
            cats[event.variant].add(event.cat)
            names[event.variant].add(event.name)
        for variant in (0, 1):
            assert "rdv" in cats[variant], "rendezvous events missing"
            assert "clock" in cats[variant], "clock events missing"
            assert "buffer" in cats[variant], "occupancy events missing"
        # the master stamps the ordering clock; slaves stall against it
        assert "clock.tick" in names[0]
        assert "clock.stall" in names[1]
        assert "rdv.wait" in names[0] and "rdv.wait" in names[1]

    def test_chrome_export_has_both_processes(self, fast_costs):
        _, hub = self.run_observed(fast_costs)
        chrome = hub.tracer.to_chrome()
        process_names = {e["args"]["name"]
                         for e in chrome["traceEvents"]
                         if e.get("name") == "process_name"}
        assert process_names == {"variant 0 (master)",
                                 "variant 1 (slave 1)"}
        counters = [e for e in chrome["traceEvents"] if e["ph"] == "C"]
        assert {e["pid"] for e in counters} == {0, 1}

    def test_metrics_capture_monitor_traffic(self, fast_costs):
        _, hub = self.run_observed(fast_costs)
        snapshot = hub.metrics.snapshot()
        assert snapshot["monitor.calls"] > 0
        assert snapshot["monitor.rendezvous.completed"] > 0
        assert snapshot["monitor.rendezvous.latency_cycles"]["count"] > 0
        assert snapshot["agent.recorded"] > 0
        assert snapshot["agent.replayed"] > 0
        # occupancy gauges carry the high-water mark per buffer
        woc_gauges = [name for name in snapshot
                      if name.startswith("agent.buffer.woc:")]
        assert woc_gauges


class TestRunnerIntegration:
    def test_observed_cell_bypasses_memo_cache(self):
        from repro.experiments.runner import run_one

        hub = ObsHub()
        observed = run_one("fft", "wall_of_clocks", 2, scale=0.05,
                           obs=hub)
        assert len(hub.tracer.events) > 0
        # a second observed run records fresh events (no stale cache hit)
        again = ObsHub()
        repeat = run_one("fft", "wall_of_clocks", 2, scale=0.05,
                         obs=again)
        assert len(again.tracer.events) == len(hub.tracer.events)
        assert repeat.mvee_cycles == observed.mvee_cycles
