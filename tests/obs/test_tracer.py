"""Unit tests for the structured event tracer (repro.obs.tracer)."""

import json

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)


class FakeClock:
    """A manually-advanced simulated clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tracer(**kwargs):
    clock = FakeClock()
    return Tracer(clock=clock, **kwargs), clock


class TestRecording:
    def test_instant_stamps_current_clock(self):
        tracer, clock = make_tracer()
        clock.now = 42.0
        tracer.instant("open", 0, "main", cat="call", args={"seq": 7})
        (event,) = tracer.events
        assert event.ts == 42.0
        assert event.ph == "i"
        assert event.variant == 0 and event.thread == "main"
        assert event.args == {"seq": 7}

    def test_span_duration_from_clock(self):
        tracer, clock = make_tracer()
        clock.now = 100.0
        tracer.begin_span("k", "wait:rdv", 1, "main", cat="wait")
        assert tracer.events == []  # nothing recorded until the span closes
        clock.now = 350.0
        assert tracer.end_span("k") == 250.0
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.ts == 100.0 and event.dur == 250.0

    def test_end_span_without_begin_is_harmless(self):
        tracer, _ = make_tracer()
        assert tracer.end_span("never-opened") == 0.0
        assert tracer.events == []

    def test_end_span_merges_extra_args(self):
        tracer, clock = make_tracer()
        tracer.begin_span("k", "wait", 0, "main", args={"a": 1})
        clock.now = 5.0
        tracer.end_span("k", extra_args={"b": 2})
        assert tracer.events[0].args == {"a": 1, "b": 2}

    def test_counter_event_shape(self):
        tracer, clock = make_tracer()
        clock.now = 9.0
        tracer.counter("buf:woc", 1, 4, series="occupancy")
        (event,) = tracer.events
        assert event.ph == "C"
        assert event.args == {"occupancy": 4}

    def test_ring_is_bounded_per_variant(self):
        tracer, _ = make_tracer(ring_size=4)
        for index in range(10):
            tracer.instant(f"e{index}", 0, "main")
        tracer.instant("other", 1, "main")
        tail = tracer.tail(0)
        assert [event.name for event in tail] == ["e6", "e7", "e8", "e9"]
        assert [event.name for event in tracer.tail(1)] == ["other"]
        assert tracer.variants() == [0, 1]
        assert len(tracer.events) == 11  # the full log is not bounded


class TestChromeExport:
    def test_golden_export(self):
        """Pin the exact Chrome trace_event output for a tiny fixed run."""
        tracer, clock = make_tracer()
        clock.now = 1000.0  # cycles == ns; 1000 cycles -> 1 us
        tracer.instant("open", 0, "main", cat="call", args={"seq": 0})
        clock.now = 3000.0
        tracer.complete("rdv.wait", 1, "main", ts=1000.0, dur=2000.0,
                        cat="rdv")
        tracer.counter("buf:woc", 0, 3, series="occupancy")
        expected = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "variant 0 (master)"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "main"}},
            {"name": "open", "cat": "call", "ph": "i", "ts": 1.0,
             "pid": 0, "tid": 0, "s": "t", "args": {"seq": 0}},
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "variant 1 (slave 1)"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "main"}},
            {"name": "rdv.wait", "cat": "rdv", "ph": "X", "ts": 1.0,
             "dur": 2.0, "pid": 1, "tid": 0},
            {"name": "buf:woc", "cat": "buffer", "ph": "C", "ts": 3.0,
             "pid": 0, "tid": 1, "args": {"occupancy": 3}},
        ]
        chrome = tracer.to_chrome()
        assert chrome["traceEvents"] == expected
        assert chrome["displayTimeUnit"] == "ns"

    def test_thread_ids_deterministic_per_variant(self):
        tracer, _ = make_tracer()
        tracer.instant("a", 0, "main")
        tracer.instant("b", 0, "main/1")
        tracer.instant("c", 1, "main/1")  # other variant: tids restart
        events = [e for e in tracer.to_chrome()["traceEvents"]
                  if e["ph"] != "M"]
        assert [(e["pid"], e["tid"]) for e in events] == [
            (0, 0), (0, 1), (1, 0)]

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer, _ = make_tracer()
        tracer.instant("a", 0, "main")
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        data = json.loads(path.read_text())
        assert any(event.get("name") == "a"
                   for event in data["traceEvents"])

    def test_write_jsonl_round_trips_events(self, tmp_path):
        tracer, clock = make_tracer()
        clock.now = 10.0
        tracer.instant("a", 0, "main", cat="call", args={"seq": 1})
        tracer.complete("w", 1, "main", ts=2.0, dur=3.0)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines == [event.to_dict() for event in tracer.events]
        assert lines[1]["dur"] == 3.0


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        null.bind_clock(lambda: 99.0)
        null.instant("a", 0, "main")
        null.counter("b", 0, 1)
        null.begin_span("k", "w", 0, "main")
        assert null.end_span("k") == 0.0
        assert null.events == ()
        assert null.tail(0) == [] and null.variants() == []
        assert null.now == 0.0
        assert not null.enabled and NULL_TRACER.enabled is False

    def test_exports_are_empty_but_valid(self, tmp_path):
        chrome = tmp_path / "c.json"
        jsonl = tmp_path / "e.jsonl"
        NULL_TRACER.write_chrome(chrome)
        NULL_TRACER.write_jsonl(jsonl)
        assert json.loads(chrome.read_text())["traceEvents"] == []
        assert jsonl.read_text() == ""


class TestTraceEvent:
    def test_to_dict_omits_empty_fields(self):
        event = TraceEvent(name="a", cat="call", ph="i", ts=1.0, dur=0.0,
                           variant=0, thread="main", args=None)
        data = event.to_dict()
        assert "dur" not in data and "args" not in data

    def test_to_chrome_converts_cycles_to_microseconds(self):
        event = TraceEvent(name="s", cat="wait", ph="X", ts=2_000.0,
                           dur=500.0, variant=1, thread="main", args=None)
        chrome = event.to_chrome(tid=3)
        assert chrome["ts"] == 2.0 and chrome["dur"] == 0.5
        assert chrome["pid"] == 1 and chrome["tid"] == 3
