"""Edge cases of the engine's result-transport and harvest paths.

Each test pins one of the ways a cell result can take an unusual route
home: oversized payloads diverted through POSIX shared memory,
unpicklable values downgraded to failed envelopes, workers that die
without reporting (caught by the process sentinel), and completions
arriving out of task order (slotted back by position).  These are the
paths the differential suite exercises only implicitly — here each gets
a direct witness.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time

import pytest

from repro.par.cells import CellResult, CellTask
from repro.par.engine import run_cells
from repro.par.environment import ProcessEnvironment
from repro.par.pool import WorkerPool
from repro.par.transport import (
    SHM_THRESHOLD_BYTES,
    ListBuffer,
    recv_result,
    send_result,
    shm_available,
)

BIG_BYTES = 2 * 1024 * 1024  # comfortably past the 60KiB threshold


# Module-level so fork workers can pickle them by reference.
def _big_blob(n, fill):
    return bytes([fill]) * n


def _unpicklable():
    return lambda: None  # lambdas cannot be pickled


def _hard_exit(code):
    import os

    os._exit(code)


def _sleep_then_value(seconds, value):
    time.sleep(seconds)
    return value


def _task(index, fn, **kwargs):
    return CellTask(sweep_id="edge-test", index=index, fn=fn,
                    kwargs=kwargs)


def _run_private(tasks, jobs=2, **kwargs):
    pool = WorkerPool(jobs)
    try:
        return run_cells(tasks, jobs=jobs,
                         env=ProcessEnvironment(pool=pool), **kwargs)
    finally:
        pool.shutdown()


class TestSharedMemoryTransport:
    @pytest.mark.skipif(not shm_available(),
                        reason="no multiprocessing.shared_memory")
    def test_oversized_result_crosses_intact(self):
        results = _run_private(
            [_task(0, _big_blob, n=BIG_BYTES, fill=0xAB),
             _task(1, _big_blob, n=16, fill=0x01)])
        assert results[0].ok
        assert results[0].value == bytes([0xAB]) * BIG_BYTES
        assert results[1].value == bytes([0x01]) * 16

    @pytest.mark.skipif(not shm_available(),
                        reason="no multiprocessing.shared_memory")
    def test_big_payload_takes_the_shm_arm(self):
        parent, child = multiprocessing.Pipe()
        big = CellResult(index=3, ok=True,
                         value=b"x" * SHM_THRESHOLD_BYTES)
        send_result(child, big)
        message = parent.recv()
        assert message[0] == "shm"
        decoded = recv_result(message)
        assert decoded.ok and decoded.value == big.value
        assert decoded.index == 3
        # The parent unlinked the segment after reading it.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=message[1])

    def test_small_payload_stays_inline(self):
        parent, child = multiprocessing.Pipe()
        send_result(child, CellResult(index=0, ok=True, value=42))
        message = parent.recv()
        assert message[0] == "inline"
        assert recv_result(message).value == 42

    def test_threshold_can_be_forced_low(self):
        if not shm_available():
            pytest.skip("no multiprocessing.shared_memory")
        parent, child = multiprocessing.Pipe()
        send_result(child, CellResult(index=0, ok=True, value="tiny"),
                    threshold=1)
        message = parent.recv()
        assert message[0] == "shm"
        assert recv_result(message).value == "tiny"


class TestUnpicklableResults:
    def test_unpicklable_value_becomes_failed_cell(self):
        results = _run_private([_task(0, _unpicklable),
                                _task(1, _sleep_then_value,
                                      seconds=0, value=7)])
        assert not results[0].ok
        assert "result not picklable" in results[0].error
        assert results[0].worker_pid is not None
        assert results[1].ok and results[1].value == 7

    def test_send_result_never_raises_on_bad_payload(self):
        parent, child = multiprocessing.Pipe()
        bad = CellResult(index=5, ok=True, value=lambda: None)
        send_result(child, bad)  # must not raise
        decoded = recv_result(parent.recv())
        assert not decoded.ok
        assert decoded.index == 5
        assert "result not picklable" in decoded.error


class TestDeadWorkerSentinel:
    def test_exit_code_is_reported(self):
        results = _run_private([_task(0, _hard_exit, code=17),
                                _task(1, _sleep_then_value,
                                      seconds=0, value=1)])
        assert not results[0].ok
        assert "worker died before reporting (exit code 17)" \
            in results[0].error
        assert results[1].ok

    def test_sweep_continues_past_multiple_deaths(self):
        tasks = [_task(0, _hard_exit, code=11),
                 _task(1, _sleep_then_value, seconds=0, value=10),
                 _task(2, _hard_exit, code=12),
                 _task(3, _sleep_then_value, seconds=0, value=30)]
        results = _run_private(tasks)
        assert [r.ok for r in results] == [False, True, False, True]
        assert "exit code 11" in results[0].error
        assert "exit code 12" in results[2].error
        assert [r.value for r in results if r.ok] == [10, 30]


class TestOutOfOrderCompletion:
    """Later cells finishing first must still land in task order."""

    def _delays(self):
        # Cell 0 is the slowest, so completions arrive in reverse.
        return [_task(i, _sleep_then_value,
                      seconds=(3 - i) * 0.15, value=i * 10)
                for i in range(4)]

    def test_process_env_slots_by_position(self):
        results = _run_private(self._delays(), jobs=4)
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.value for r in results] == [0, 10, 20, 30]

    def test_thread_env_slots_by_position(self):
        results = run_cells(self._delays(), jobs=4, env="thread")
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.value for r in results] == [0, 10, 20, 30]


class TestBufferContract:
    def test_incomplete_buffer_refuses_to_collect(self):
        buffer = ListBuffer(3)
        buffer.put(0, CellResult(index=0, ok=True, value=1))
        buffer.put(2, CellResult(index=2, ok=True, value=3))
        with pytest.raises(RuntimeError, match=r"slots \[1\]"):
            buffer.collect()

    def test_pickle_roundtrip_of_cell_result(self):
        result = CellResult(index=9, ok=False, error="boom",
                            worker_pid=123)
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
