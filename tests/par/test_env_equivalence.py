"""Differential conformance across execution environments.

``test_serial_parallel_equiv`` licenses *sharding* (jobs=N equals
jobs=1); this suite licenses the *environment axis*: every registered
:class:`~repro.par.environment.ExecutionEnvironment` — inline, worker
threads, the persistent work-stealing process pool, and the static
(non-stealing) process pool — must produce the same canonical digest as
the serial path for every sweep family the engine carries, across
seeds and worker counts.  If an environment ever leaks scheduling into
simulated results, the digest moves and this file names the family,
environment, and seed that diverged.

Serial baselines are computed once per (family, seed) and cached, so
the grid costs one serial run plus one run per environment.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json

import pytest

from repro.experiments.runner import (
    reset_caches,
    run_deadlock_sweep,
    run_fault_matrix,
    run_race_sweep,
)
from repro.experiments.tables import table2
from repro.par.bench import bench_tasks, build_matrix, canonical_cells
from repro.par.engine import merge_cell_traces, run_cells
from repro.par.environment import ENVIRONMENT_NAMES

SEEDS = (1, 2, 7)
JOBS = 4

FM_ARGS = dict(benchmark="fft", kinds=("crash", "drop_wake"),
               policies=("kill-all", "quarantine"), scale=0.05)


def digest_of(structure) -> str:
    """Canonical digest of a structural (JSON-able) sweep result."""
    payload = json.dumps(structure, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _fault(seed, jobs, env):
    cells = run_fault_matrix(seed=seed, jobs=jobs, env=env, **FM_ARGS)
    return [dataclasses.asdict(cell) for cell in cells]


def _races(seed, jobs, env):
    rows = run_race_sweep(benchmarks=("fft", "dedup"), scale=0.05,
                          seed=seed, include_nginx=False, jobs=jobs,
                          env=env)
    return [{key: value
             for key, value in dataclasses.asdict(row).items()
             if key != "overhead_pct"}  # host wall-clock
            for row in rows]


def _deadlock(seed, jobs, env):
    rows = run_deadlock_sweep(sizes=(3,), seed=seed, jobs=jobs, env=env)
    return [dataclasses.asdict(row) for row in rows]


def _table2(seed, jobs, env):
    return table2(scale=0.05, seed=seed, jobs=jobs, env=env)


def _bench(seed, jobs, env):
    matrix = build_matrix(quick=True, seed=seed)
    reset_caches()
    return canonical_cells(run_cells(bench_tasks(matrix), jobs=jobs,
                                     env=env))


FAMILIES = {
    "fault-matrix": _fault,
    "race-sweep": _races,
    "deadlock-sweep": _deadlock,
    "table2": _table2,
    "bench-matrix": _bench,
}


@functools.lru_cache(maxsize=None)
def serial_digest(family: str, seed: int) -> str:
    return digest_of(FAMILIES[family](seed, 1, None))


class TestEnvironmentDigestEquivalence:
    """The full grid: family x environment x seed at jobs=4."""

    @pytest.mark.parametrize("env", ENVIRONMENT_NAMES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_env_digest_equals_serial(self, family, seed, env):
        run = FAMILIES[family]
        assert digest_of(run(seed, JOBS, env)) == \
            serial_digest(family, seed), \
            f"{family} diverged from serial under env={env} seed={seed}"


class TestSingleJobShortCircuit:
    """jobs=1 must hit the inline fast path and stay digest-identical
    no matter which environment was requested."""

    @pytest.mark.parametrize("env", ENVIRONMENT_NAMES)
    def test_jobs1_equals_serial(self, env):
        assert digest_of(_bench(1, 1, env)) == \
            serial_digest("bench-matrix", 1)

    @pytest.mark.parametrize("env", ENVIRONMENT_NAMES)
    def test_fault_matrix_jobs1_equals_serial(self, env):
        assert digest_of(_fault(1, 1, env)) == \
            serial_digest("fault-matrix", 1)


class TestFullMatrixGolden:
    """Acceptance pin: every environment reproduces the committed
    ``BENCH_par.json`` digest for the full 225-cell bench matrix.  The
    committed reference is serial-derived and regenerated through the
    ``--compare`` gate, so matching it *is* matching serial."""

    @pytest.fixture(scope="class")
    def golden_digest(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        return json.loads((root / "BENCH_par.json").read_text())["digest"]

    @pytest.mark.parametrize("env", ENVIRONMENT_NAMES)
    def test_full_matrix_matches_committed_digest(self, env,
                                                  golden_digest):
        from repro.par.bench import digest_of as bench_digest_of

        matrix = build_matrix(quick=False, seed=1)
        reset_caches()
        cells = canonical_cells(run_cells(bench_tasks(matrix),
                                          jobs=JOBS, env=env))
        assert bench_digest_of(cells) == golden_digest, \
            f"full-matrix digest diverged from BENCH_par.json under " \
            f"env={env}"


class TestObsTraceEnvEquivalence:
    """Merged observation traces are byte-identical in every
    environment — the strongest form of the equivalence claim: not just
    final aggregates but the full ordered event stream matches."""

    def test_merged_traces_byte_identical_across_envs(self, tmp_path):
        matrix = build_matrix(quick=True, seed=1)

        def merged_bytes(env, jobs):
            label = f"{env or 'serial'}-{jobs}"
            trace_dir = tmp_path / label
            results = run_cells(bench_tasks(matrix, with_obs=True),
                                jobs=jobs, env=env,
                                trace_dir=str(trace_dir))
            merged = tmp_path / f"{label}.jsonl"
            count = merge_cell_traces(results, str(merged))
            assert count > 0
            return merged.read_bytes()

        baseline = merged_bytes(None, 1)
        for env in ENVIRONMENT_NAMES:
            assert merged_bytes(env, JOBS) == baseline, \
                f"obs traces diverged under env={env}"
