"""CellExecutor tests: ticketed submit/poll/wait, crash isolation,
shutdown semantics, and jobs-invariant results (serve satellite: the
same session load is byte-identical under ``--jobs 1`` and ``--jobs 4``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import serve_load
from repro.par.engine import CellExecutor, CellTask
from repro.serve.session import run_session_cell


# Module-level so the fork workers can pickle them by reference.
def _square(x):
    return x * x


def _crash(message):
    raise RuntimeError(message)


def _hard_exit():
    os._exit(17)


def _sleep_forever():
    time.sleep(3600)


def _task(index, fn, **kwargs):
    return CellTask(sweep_id="exec-test", index=index, fn=fn,
                    kwargs=kwargs)


class TestInlineMode:
    def test_jobs_zero_runs_in_process(self):
        executor = CellExecutor(jobs=0)
        try:
            ticket = executor.submit(_task(0, _square, x=7))
            result = executor.poll(ticket)
            assert result.ok and result.value == 49
            assert result.worker_pid == os.getpid()
            assert executor.in_flight == 0
        finally:
            executor.shutdown()

    def test_poll_hands_a_result_over_exactly_once(self):
        executor = CellExecutor(jobs=0)
        try:
            ticket = executor.submit(_task(0, _square, x=3))
            assert executor.poll(ticket).value == 9
            assert executor.poll(ticket) is None
        finally:
            executor.shutdown()

    def test_inline_exceptions_become_failed_results(self):
        executor = CellExecutor(jobs=0)
        try:
            result = executor.poll(executor.submit(
                _task(4, _crash, message="boom")))
            assert not result.ok
            assert "boom" in result.error
            assert result.index == 4
        finally:
            executor.shutdown()


class TestForkPool:
    def test_results_arrive_out_of_band(self):
        executor = CellExecutor(jobs=2)
        try:
            tickets = [executor.submit(_task(i, _square, x=i))
                       for i in range(6)]
            values = [executor.wait(t, timeout=60.0).value
                      for t in tickets]
            assert values == [i * i for i in range(6)]
            assert executor.completed == 6
        finally:
            executor.shutdown()

    def test_worker_crash_is_isolated(self):
        executor = CellExecutor(jobs=2)
        try:
            dead = executor.submit(_task(0, _hard_exit))
            alive = executor.submit(_task(1, _square, x=5))
            crashed = executor.wait(dead, timeout=60.0)
            assert not crashed.ok
            assert "exit code 17" in crashed.error
            assert executor.wait(alive, timeout=60.0).value == 25
        finally:
            executor.shutdown()

    def test_wait_timeout_returns_none_and_keeps_the_ticket(self):
        executor = CellExecutor(jobs=1)
        try:
            blocker = executor.submit(_task(0, _sleep_forever))
            queued = executor.submit(_task(1, _square, x=2))
            assert executor.wait(queued, timeout=0.1) is None
            assert executor.in_flight == 2
        finally:
            executor.shutdown()
        # Shutdown fails both without hanging; tickets still resolve.
        assert "shut down" in executor.poll(blocker).error
        assert "shut down" in executor.poll(queued).error

    def test_submit_after_shutdown_is_an_error(self):
        executor = CellExecutor(jobs=0)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(_task(0, _square, x=1))

    def test_shutdown_is_idempotent(self):
        executor = CellExecutor(jobs=2)
        executor.shutdown()
        executor.shutdown()


class TestJobsInvariance:
    """The serve satellite contract: the session load produces
    byte-identical outcomes whether the daemon runs ``--jobs 1`` or
    ``--jobs 4`` (scheduling must not leak into simulated results)."""

    def _run_load(self, jobs: int) -> str:
        specs = serve_load.build_load(4, workload="fft", base_seed=9,
                                      scale=0.05)
        executor = CellExecutor(jobs=jobs)
        try:
            tickets = [
                executor.submit(CellTask(
                    sweep_id=serve_load.SWEEP_ID, index=index,
                    fn=run_session_cell,
                    kwargs={"spec_dict": spec,
                            "session_id": f"s-{index}"},
                    seed=spec["seed"]))
                for index, spec in enumerate(specs)]
            outcomes = []
            for index, ticket in enumerate(tickets):
                result = executor.wait(ticket, timeout=120.0)
                assert result.ok, result.error
                outcomes.append({"index": index,
                                 "seed": specs[index]["seed"],
                                 **result.value})
        finally:
            executor.shutdown()
        return serve_load.load_digest(outcomes)

    def test_digest_identical_across_jobs_1_and_4(self):
        assert self._run_load(1) == self._run_load(4)

    def test_fork_pool_matches_inline(self):
        assert self._run_load(0) == self._run_load(2)
