"""Fault tolerance of the persistent worker pool.

The warm-pool upgrade must not weaken the first-generation engine's
crash-isolation contract: a worker that dies mid-cell (SIGKILL, OOM,
``os._exit``) fails exactly that cell, the pool respawns the slot back
to target size, and a follow-up sweep on the *injured* pool is
digest-identical to a fresh run.  A wedged-but-alive worker is the new
failure mode persistence introduces; the stall budget converts it into
one failed cell plus a respawn instead of a hung sweep.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.experiments.runner import reset_caches
from repro.par.bench import bench_tasks, build_matrix, canonical_cells
from repro.par.cells import CellTask
from repro.par.engine import run_cells
from repro.par.environment import ProcessEnvironment
from repro.par.pool import WorkerPool


# Module-level so fork workers can pickle them by reference.
def _square(x):
    return x * x


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_then_square(seconds, x):
    time.sleep(seconds)
    return x * x


def _announce_pid_and_hang(pid_file):
    with open(pid_file, "w") as handle:
        handle.write(str(os.getpid()))
    time.sleep(600)


def _task(index, fn, **kwargs):
    return CellTask(sweep_id="pool-faults", index=index, fn=fn,
                    kwargs=kwargs)


def run_on(pool, tasks, stall_timeout_s=None):
    env = ProcessEnvironment(pool=pool)
    runner = env.make_runner(pool.size, stall_timeout_s=stall_timeout_s)
    try:
        return runner.run(tasks)
    finally:
        runner.close()  # non-owning: leaves the pool warm


class TestWorkerDeath:
    def test_sigkill_fails_only_its_cell_and_pool_respawns(self):
        pool = WorkerPool(2)
        try:
            # Warm the pool with a clean sweep first.
            warm = run_on(pool, [_task(i, _square, x=i)
                                 for i in range(4)])
            assert [r.value for r in warm] == [0, 1, 4, 9]
            assert pool.stats()["spawned"] == 2

            tasks = [_task(0, _square, x=3),
                     _task(1, _kill_self),
                     _task(2, _square, x=5),
                     _task(3, _square, x=7)]
            results = run_on(pool, tasks)
            assert [r.ok for r in results] == [True, False, True, True]
            assert [r.value for r in results if r.ok] == [9, 25, 49]
            assert "worker died before reporting" in results[1].error
            # SIGKILL surfaces as a negative exit code on POSIX.
            assert "-9" in results[1].error

            stats = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["alive"] == stats["size"] == 2
        finally:
            pool.shutdown()

    def test_external_sigkill_mid_cell(self, tmp_path):
        """Kill a worker from *outside* while its cell runs — the
        sentinel watch, not the cell's own exit path, must catch it."""
        pid_file = tmp_path / "victim.pid"
        pool = WorkerPool(2)
        sniper_error = []

        def sniper():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if pid_file.exists() and pid_file.read_text():
                    os.kill(int(pid_file.read_text()), signal.SIGKILL)
                    return
                time.sleep(0.02)
            sniper_error.append("victim never announced its pid")

        thread = threading.Thread(target=sniper)
        thread.start()
        try:
            tasks = [_task(0, _announce_pid_and_hang,
                           pid_file=str(pid_file)),
                     _task(1, _square, x=6)]
            results = run_on(pool, tasks)
            thread.join(timeout=30.0)
            assert not sniper_error
            assert not results[0].ok
            assert "worker died before reporting" in results[0].error
            assert results[1].ok and results[1].value == 36
            assert pool.stats()["alive"] == 2
        finally:
            pool.shutdown()

    def test_followup_sweep_on_injured_pool_is_digest_identical(self):
        pool = WorkerPool(2)
        try:
            crashed = run_on(pool, [_task(0, _kill_self),
                                    _task(1, _square, x=2)])
            assert not crashed[0].ok and crashed[1].ok
            assert pool.stats()["respawns"] >= 1

            matrix = build_matrix(quick=True, seed=5)
            reset_caches()
            fresh = canonical_cells(
                run_cells(bench_tasks(matrix), jobs=1))
            reset_caches()
            injured = canonical_cells(
                run_on(pool, bench_tasks(build_matrix(quick=True,
                                                      seed=5))))
            assert injured == fresh
        finally:
            pool.shutdown()


class TestStallDetection:
    def test_stalled_worker_is_killed_and_respawned(self):
        pool = WorkerPool(2)
        try:
            tasks = [_task(0, _sleep_then_square, seconds=30, x=1),
                     _task(1, _square, x=4),
                     _task(2, _square, x=5)]
            start = time.monotonic()
            results = run_on(pool, tasks, stall_timeout_s=1.0)
            elapsed = time.monotonic() - start
            assert elapsed < 25, "stall budget did not fire"
            assert not results[0].ok
            assert ("worker stalled: no result within 1s; "
                    "killed and respawned") in results[0].error
            assert [r.value for r in results[1:]] == [16, 25]
            stats = pool.stats()
            assert stats["stall_kills"] == 1
            assert stats["alive"] == 2
        finally:
            pool.shutdown()

    def test_slow_but_within_budget_is_not_killed(self):
        pool = WorkerPool(1)
        try:
            results = run_on(pool, [_task(0, _sleep_then_square,
                                          seconds=0.2, x=3)],
                             stall_timeout_s=10.0)
            assert results[0].ok and results[0].value == 9
            assert pool.stats()["stall_kills"] == 0
        finally:
            pool.shutdown()


class TestPoolLifecycle:
    def test_reuse_across_sweeps_amortises_forks(self):
        pool = WorkerPool(2)
        try:
            for sweep in range(3):
                results = run_on(pool, [_task(i, _square, x=i)
                                        for i in range(6)])
                assert [r.value for r in results] == \
                    [i * i for i in range(6)]
            stats = pool.stats()
            assert stats["spawned"] == 2      # forked once, not per sweep
            assert stats["batches"] == 3
            assert stats["tasks"] == 18
        finally:
            pool.shutdown()

    def test_idle_reaping_stops_workers_but_not_the_pool(self):
        pool = WorkerPool(2, idle_timeout_s=0.01)
        try:
            run_on(pool, [_task(i, _square, x=i) for i in range(2)])
            time.sleep(0.05)
            assert pool.reap_idle() == 2
            assert pool.stats()["alive"] == 0
            # The pool itself stays usable: next sweep respawns lazily.
            results = run_on(pool, [_task(0, _square, x=8)])
            assert results[0].ok and results[0].value == 64
            assert pool.stats()["reaped"] == 2
        finally:
            pool.shutdown()

    def test_shutdown_pool_refuses_dispatch(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()  # idempotent
        try:
            pool.worker(0)
        except RuntimeError as exc:
            assert "shut down" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")
