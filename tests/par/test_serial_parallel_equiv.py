"""Differential conformance: ``jobs=N`` output equals ``jobs=1``.

This suite is the license for the parallel engine to exist: the record/
replay-style discipline (PAPERS.md: deterministic multithreading) says a
sweep may only be parallelized if its sharded output is *structurally
identical* to the serial output — same rows, same verdicts, same
counters, same order.  Every sweep the engine carries is differenced
here against its serial twin, across multiple seeds.

Host wall-clock fields (``RaceSweepRow.overhead_pct``,
``CellResult.duration_s``) are the only legitimate differences between
the two paths and are excluded from the structural forms.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.runner import (
    fault_matrix_table,
    race_sweep_table,
    reset_caches,
    run_fault_matrix,
    run_race_sweep,
)
from repro.experiments.tables import table2
from repro.par.bench import bench_tasks, build_matrix, canonical_cells
from repro.par.engine import run_cells

SEEDS = (1, 2, 7)

#: Small-but-representative fault matrix: one slave-side and one
#: master-side fault kind under divergent policies.
FM_ARGS = dict(benchmark="fft", kinds=("crash", "drop_wake"),
               policies=("kill-all", "quarantine"), scale=0.05)


def fault_cells_structural(cells) -> list[dict]:
    return [dataclasses.asdict(cell) for cell in cells]


def race_rows_structural(rows) -> list[dict]:
    return [{key: value
             for key, value in dataclasses.asdict(row).items()
             if key != "overhead_pct"}
            for row in rows]


class TestFaultMatrixEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_jobs4_equals_jobs1(self, seed):
        serial = run_fault_matrix(seed=seed, jobs=1, **FM_ARGS)
        parallel = run_fault_matrix(seed=seed, jobs=4, **FM_ARGS)
        assert (fault_cells_structural(parallel)
                == fault_cells_structural(serial))
        # The rendered table (the user-visible artifact) matches too.
        assert fault_matrix_table(parallel) == fault_matrix_table(serial)

    def test_jobs_exceeding_cells_is_fine(self):
        serial = run_fault_matrix(seed=3, jobs=1, **FM_ARGS)
        oversubscribed = run_fault_matrix(seed=3, jobs=32, **FM_ARGS)
        assert (fault_cells_structural(oversubscribed)
                == fault_cells_structural(serial))


class TestRaceSweepEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_jobs4_equals_jobs1(self, seed):
        kwargs = dict(benchmarks=("fft", "dedup"), scale=0.05,
                      seed=seed, include_nginx=False)
        serial = run_race_sweep(jobs=1, **kwargs)
        parallel = run_race_sweep(jobs=4, **kwargs)
        assert (race_rows_structural(parallel)
                == race_rows_structural(serial))

    def test_nginx_conditions_equal_across_workers(self):
        kwargs = dict(benchmarks=("fft",), scale=0.05, seed=1,
                      include_nginx=True)
        serial = run_race_sweep(jobs=1, **kwargs)
        parallel = run_race_sweep(jobs=4, **kwargs)
        assert [row.workload for row in parallel] == \
            ["fft", "nginx/bare", "nginx/full"]
        assert (race_rows_structural(parallel)
                == race_rows_structural(serial))
        # The rendered sweep table differs only in the overhead column.
        serial_rows = race_sweep_table(serial).splitlines()
        parallel_rows = race_sweep_table(parallel).splitlines()
        assert len(serial_rows) == len(parallel_rows)


class TestTableEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_table2_jobs4_equals_jobs1(self, seed):
        serial = table2(scale=0.05, seed=seed, jobs=1)
        parallel = table2(scale=0.05, seed=seed, jobs=4)
        assert parallel == serial


class TestBenchMatrixEquivalence:
    """The `repro bench` task list itself: sharded == inline, and the
    aggregate is independent of worker count."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quick_matrix_jobs_invariant(self, seed):
        matrix = build_matrix(quick=True, seed=seed)
        reset_caches()
        serial = canonical_cells(run_cells(bench_tasks(matrix), jobs=1))
        reset_caches()
        two = canonical_cells(run_cells(bench_tasks(matrix), jobs=2))
        reset_caches()
        four = canonical_cells(run_cells(bench_tasks(matrix), jobs=4))
        assert serial == two == four
        assert all(cell["verdict"] == "clean" for cell in serial)


class TestObsTraceMerging:
    def test_parallel_traces_match_serial(self, tmp_path):
        """Per-worker obs traces, merged in cell order, are identical to
        the traces an inline run writes."""
        from repro.par.engine import merge_cell_traces

        matrix = build_matrix(quick=True, seed=1)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_cells(bench_tasks(matrix, with_obs=True), jobs=1,
                           trace_dir=str(serial_dir))
        parallel = run_cells(bench_tasks(matrix, with_obs=True), jobs=2,
                             trace_dir=str(parallel_dir))
        merged_serial = tmp_path / "serial.jsonl"
        merged_parallel = tmp_path / "parallel.jsonl"
        count_serial = merge_cell_traces(serial, str(merged_serial))
        count_parallel = merge_cell_traces(parallel,
                                           str(merged_parallel))
        assert count_serial == count_parallel > 0
        assert merged_serial.read_text() == merged_parallel.read_text()
