"""Tests for the performance model: costs, contention, reports."""

import math

import pytest

from repro.kernel.vtime import (
    CYCLES_PER_SECOND,
    VirtualClock,
    cycles_to_seconds,
    seconds_to_cycles,
)
from repro.perf.contention import (
    ContentionTracker,
    SharedLineModel,
    coherence_cycles,
)
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.report import (
    SlowdownReport,
    aggregate_slowdowns,
    arithmetic_mean,
    format_table,
    geometric_mean,
)


class TestVirtualTime:
    def test_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(12345.0)) == \
            pytest.approx(12345.0)

    def test_one_cycle_is_one_nanosecond(self):
        assert CYCLES_PER_SECOND == 1_000_000_000

    def test_clock_formats(self):
        clock = VirtualClock()
        clock.bind(lambda: 1_500_000.0)  # 1.5 ms
        seconds, microseconds = clock.gettimeofday()
        assert seconds == int(clock.epoch)
        assert microseconds == 1_500
        mono_s, mono_ns = clock.clock_gettime()
        assert (mono_s, mono_ns) == (0, 1_500_000)
        assert clock.rdtsc() == 1_500_000


class TestCostModel:
    def test_scaled_returns_modified_copy(self):
        base = CostModel()
        tuned = base.scaled(coherence_penalty=999.0)
        assert tuned.coherence_penalty == 999.0
        assert base.coherence_penalty != 999.0
        assert tuned.sync_op_exec == base.sync_op_exec

    def test_defaults_positive(self):
        for field, value in vars(DEFAULT_COSTS).items():
            assert value >= 0, field


class TestSharedLine:
    def test_window_forgets_old_accessors(self):
        line = SharedLineModel(window=4)
        line.access("a")
        for _ in range(6):
            line.access("b")
        # "a" fell out of the window: b is alone again.
        assert line.access("b") == 0

    def test_two_sharers(self):
        line = SharedLineModel()
        line.access("a")
        assert line.access("b") == 1

    def test_tracker_isolated_lines(self):
        tracker = ContentionTracker()
        tracker.access("line1", "a")
        assert tracker.access("line2", "b") == 0
        assert tracker.line_count() == 2

    def test_coherence_saturates(self):
        costs = CostModel(coherence_penalty=100.0, numa_factor=1.0)
        assert coherence_cycles(costs, 1) == 100.0
        assert coherence_cycles(costs, 2) == pytest.approx(130.0)
        # sub-linear growth
        assert coherence_cycles(costs, 8) < 8 * 100.0

    def test_numa_multiplies(self):
        one = CostModel(coherence_penalty=100.0, numa_factor=1.0)
        two = CostModel(coherence_penalty=100.0, numa_factor=2.0)
        assert coherence_cycles(two, 3) == 2 * coherence_cycles(one, 3)


class TestReports:
    def test_slowdown_math(self):
        report = SlowdownReport(benchmark="x", agent="woc", variants=2,
                                native_cycles=100.0, mvee_cycles=150.0)
        assert report.slowdown == pytest.approx(1.5)
        assert report.native_seconds == pytest.approx(1e-7)

    def test_zero_native_is_infinite(self):
        report = SlowdownReport(benchmark="x", agent="woc", variants=2,
                                native_cycles=0.0, mvee_cycles=1.0)
        assert math.isinf(report.slowdown)

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert math.isnan(arithmetic_mean([]))
        assert math.isnan(geometric_mean([]))

    def test_geometric_mean_rejects_nonpositive(self):
        """A zero or negative slowdown is always an upstream bug; the
        aggregate must fail loudly instead of going complex-valued."""
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0, 2.0])
        with pytest.raises(ValueError, match="-3.0"):
            geometric_mean([-3.0])

    def test_aggregate_groups_by_agent_and_variants(self):
        reports = [
            SlowdownReport("a", "woc", 2, 100, 110),
            SlowdownReport("b", "woc", 2, 100, 130),
            SlowdownReport("a", "to", 2, 100, 300),
        ]
        means = aggregate_slowdowns(reports)
        assert means[("woc", 2)] == pytest.approx(1.2)
        assert means[("to", 2)] == pytest.approx(3.0)

    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["aaa", "1"], ["b", "22"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1] and "x" in lines[1]
        assert set(lines[2]) == {"-"}
        assert len(lines) == 5
