"""Tests for the Figure 4-style timeline renderer."""

from repro.perf.timeline import render_timeline, summarize_trace
from repro.sched.vm import TraceEntry


def entry(thread, time):
    return TraceEntry(thread=thread, kind="syncop", name="cas@x",
                      detail=(0,), time=time)


class TestRenderTimeline:
    def test_empty_trace(self):
        assert "no sync ops" in render_timeline([])

    def test_lanes_per_thread(self):
        text = render_timeline([entry("a", 0), entry("b", 100)],
                               width=10)
        lines = text.splitlines()
        assert any(line.startswith("a |") for line in lines)
        assert any(line.startswith("b |") for line in lines)

    def test_ops_marked_and_gaps_dotted(self):
        trace = [entry("t", 0), entry("t", 1000)]
        text = render_timeline(trace, width=10)
        lane = next(line for line in text.splitlines()
                    if line.startswith("t |"))
        body = lane.split("|")[1]
        assert body[0] == "#" and body[-1] == "#"
        assert "." in body

    def test_label_included(self):
        text = render_timeline([entry("t", 0)], label="slave v1")
        assert text.splitlines()[0] == "slave v1"

    def test_single_op_no_span(self):
        text = render_timeline([entry("t", 42)], width=8)
        lane = next(line for line in text.splitlines()
                    if line.startswith("t |"))
        assert lane.count("#") == 1
        assert "." not in lane.split("|")[1]


class TestSummarizeTrace:
    def test_per_thread_stats(self):
        trace = [entry("a", 0), entry("a", 100), entry("a", 200),
                 entry("b", 50)]
        stats = summarize_trace(trace)
        assert stats["a"]["ops"] == 3
        assert stats["a"]["span_cycles"] == 200
        assert stats["a"]["mean_gap"] == 100
        assert stats["b"]["ops"] == 1
        assert stats["b"]["mean_gap"] == 0.0
