"""Cycle-accounting correctness (repro.prof.accounting).

The load-bearing invariant: every profiled run's per-category totals
sum *exactly* to the profile's total, and each thread's category totals
tile its accounted lifetime.
"""

import json

import pytest

from repro.core.mvee import run_mvee
from repro.obs import ObsHub
from repro.prof.accounting import (
    CATEGORIES,
    CycleProfiler,
    classify_wait_key,
)
from repro.workloads.synthetic import make_benchmark
from tests.guestlib import MutexCounterProgram


def profiled_run(program, fast_costs, **kwargs):
    hub = ObsHub(trace=False, profile=True)
    outcome = run_mvee(program, obs=hub, costs=fast_costs, **kwargs)
    hub.prof.finalize(outcome.machine.now)
    return outcome, hub.prof.snapshot()


class TestClassifyWaitKey:
    def test_monitor_keys(self):
        assert classify_wait_key(("rdv", 3)) == "monitor-ordering"
        assert classify_wait_key(("order_clock", 1)) == "monitor-ordering"

    def test_agent_keys(self):
        assert classify_wait_key(("woc_clock", 0)) == "agent-wait"
        assert classify_wait_key(("to_log", 2)) == "agent-wait"
        assert classify_wait_key(("po_consume", 2)) == "agent-wait"

    def test_kernel_and_fault_keys(self):
        assert classify_wait_key(("futex", 64)) == "futex-sleep"
        assert classify_wait_key(("fault_stall", 1)) == "fault-recovery"

    def test_unknown_keys_are_guest_waits(self):
        assert classify_wait_key(("join", "t1")) == "guest-wait"
        assert classify_wait_key(("no_such_kind",)) == "guest-wait"
        assert classify_wait_key(None) == "guest-wait"


class TestExactTiling:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_totals_sum_exactly(self, agent, fast_costs):
        outcome, profile = profiled_run(
            MutexCounterProgram(workers=3, iters=25), fast_costs,
            variants=3, agent=agent, seed=7)
        assert outcome.verdict == "clean"
        per_category = profile.per_category()
        # total_cycles is *defined* as the category sum: exact equality.
        assert profile.total_cycles == sum(per_category.values())
        assert set(per_category) == set(CATEGORIES)
        assert per_category["guest-compute"] > 0

    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_threads_tile_their_lifetimes(self, agent, fast_costs):
        _, profile = profiled_run(
            MutexCounterProgram(workers=3, iters=25), fast_costs,
            variants=3, agent=agent, seed=7)
        assert profile.threads
        for entry in profile.threads:
            lifetime = entry["end"] - entry["start"]
            accounted = sum(entry["categories"].values())
            assert accounted == pytest.approx(lifetime, rel=1e-9)

    def test_benchmark_twin_profile(self, fast_costs):
        _, profile = profiled_run(
            make_benchmark("fft", scale=0.05), fast_costs,
            variants=2, agent="wall_of_clocks", seed=1,
            max_cycles=1e9)
        per_variant = profile.per_variant()
        assert set(per_variant) == {0, 1}
        # Slaves wait on the agent; the master never replays.
        assert per_variant[1]["agent-wait"] >= 0.0
        assert profile.total_cycles > profile.machine_cycles


class TestSnapshotShape:
    def test_to_dict_is_json_stable(self, fast_costs):
        _, profile = profiled_run(
            MutexCounterProgram(workers=2, iters=10), fast_costs,
            variants=2, agent="wall_of_clocks", seed=3)
        data = profile.to_dict()
        assert data["kind"] == "repro-cycle-profile"
        assert data["total_cycles"] == pytest.approx(
            sum(data["per_category"].values()))
        # Round-trips through JSON without loss of key order.
        assert json.loads(json.dumps(data, sort_keys=True))

    def test_threads_sorted_and_category_ordered(self, fast_costs):
        _, profile = profiled_run(
            MutexCounterProgram(workers=2, iters=10), fast_costs,
            variants=2, agent="wall_of_clocks", seed=3)
        keys = [(e["variant"], e["thread"]) for e in profile.threads]
        assert keys == sorted(keys)
        order = {c: i for i, c in enumerate(CATEGORIES)}
        for entry in profile.threads:
            indices = [order[c] for c in entry["categories"]]
            assert indices == sorted(indices)

    def test_midrun_snapshot_does_not_mutate(self):
        profiler = CycleProfiler()
        clock = [0.0]
        profiler.bind_clock(lambda: clock[0])
        profiler.thread_created(0, "v0:main", "main")
        clock[0] = 10.0
        profiler.sched_grant(0, "main")
        clock[0] = 25.0
        first = profiler.snapshot()
        second = profiler.snapshot()
        assert first.to_dict() == second.to_dict()
        # The live account is still open: later activity keeps accruing.
        profiler.step_committed(0, "v0:main", "main", "compute", 15.0)
        profiler.thread_finished(0, "v0:main", "main")
        final = profiler.snapshot()
        categories = final.threads[0]["categories"]
        assert categories["core-queue"] == pytest.approx(10.0)
        assert categories["guest-compute"] == pytest.approx(15.0)

    def test_restart_incarnations_merge(self):
        profiler = CycleProfiler()
        clock = [0.0]
        profiler.bind_clock(lambda: clock[0])
        profiler.thread_created(0, "v0:main", "main")
        clock[0] = 5.0
        profiler.sched_grant(0, "main")
        profiler.step_committed(0, "v0:main", "main", "compute", 3.0)
        clock[0] = 8.0
        # Restarted variant reuses the logical id.
        profiler.thread_created(0, "v0:main", "main")
        clock[0] = 12.0
        profiler.sched_grant(0, "main")
        profiler.step_committed(0, "v0:main", "main", "compute", 2.0)
        profiler.thread_finished(0, "v0:main", "main")
        profiler.finalize(12.0)
        profile = profiler.snapshot()
        assert len(profile.threads) == 1
        entry = profile.threads[0]
        assert entry["categories"]["guest-compute"] == pytest.approx(5.0)
        assert entry["start"] == 0.0
        assert entry["end"] == 12.0

    def test_hooks_defensive_about_unknown_threads(self):
        profiler = CycleProfiler()
        profiler.sched_grant(0, "ghost")
        profiler.park(0, "ghost", ("futex", 1))
        profiler.unpark(0, "ghost")
        profiler.step_committed(0, "v0:ghost", "ghost", "compute", 1.0)
        profiler.thread_finished(0, "v0:ghost", "ghost")
        assert profiler.snapshot().threads == []


class TestFaultAccounting:
    def test_fault_stall_charges_fault_recovery(self, fast_costs):
        from repro.core.divergence import MonitorPolicy
        from repro.faults import FaultPlan, FaultSpec

        _, profile = profiled_run(
            MutexCounterProgram(workers=3, iters=25), fast_costs,
            variants=3, agent="wall_of_clocks", seed=7,
            faults=FaultPlan((FaultSpec(kind="stall", variant=1, at=4,
                                        param=50_000.0),)),
            policy=MonitorPolicy(degradation="quarantine"))
        assert profile.per_category()["fault-recovery"] > 0.0
