"""Lag tracking, flamegraph output, and report rendering."""

import json

import pytest

from repro.prof.analytics import (
    LagTracker,
    collapsed_lines,
    render_report,
    write_flamegraph,
    write_lag_series,
)
from repro.prof.runner import PROFILE_AGENTS, run_profiles


@pytest.fixture(scope="module")
def nginx_results():
    """One profiled nginx run per agent (shared: the runs are pure)."""
    return run_profiles("nginx", PROFILE_AGENTS, variants=2,
                        scale=0.25, seed=1)


class TestLagTracker:
    def test_lag_is_recorded_minus_replayed(self):
        tracker = LagTracker()
        for ts in (1.0, 2.0, 3.0):
            tracker.record(ts)
        tracker.replay(4.0, variant=1)
        tracker.replay(5.0, variant=1)
        assert tracker.samples == [(4.0, 1, 2), (5.0, 1, 1)]
        data = tracker.to_dict()
        assert data["recorded"] == 3
        assert data["replayed"] == {"1": 2}
        assert data["summary"]["1"]["max"] == 2
        assert data["summary"]["1"]["mean"] == pytest.approx(1.5)

    def test_sample_every_thins_series_not_summary(self):
        tracker = LagTracker(sample_every=3)
        for i in range(9):
            tracker.record(float(i))
            tracker.replay(float(i), variant=1)
        assert len(tracker.samples) == 3
        assert tracker.to_dict()["summary"]["1"]["count"] == 9

    def test_clock_lag_summary(self):
        tracker = LagTracker()
        tracker.clock_sample(1, 4.0)
        tracker.clock_sample(1, 8.0)
        clock = tracker.to_dict()["clock_lag"]
        assert clock["1"]["max"] == 8.0
        assert clock["1"]["mean"] == pytest.approx(6.0)


class TestFlamegraph:
    def test_collapsed_format(self, nginx_results):
        lines = collapsed_lines(nginx_results[0])
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            frames = stack.split(";")
            assert frames[0] == nginx_results[0]["agent"]
            assert frames[1].startswith("v")
            assert len(frames) == 4
            assert int(count) > 0

    def test_write_flamegraph_all_agents_in_cell_order(
            self, nginx_results, tmp_path):
        path = tmp_path / "flame.txt"
        count = write_flamegraph(nginx_results, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count
        roots = [line.split(";")[0] for line in lines]
        # Cell order == agent order, each agent's block contiguous.
        assert sorted(set(roots), key=roots.index) == list(PROFILE_AGENTS)


class TestLagSeries:
    def test_jsonl_schema(self, nginx_results, tmp_path):
        path = tmp_path / "lag.jsonl"
        count = write_lag_series(nginx_results, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        for line in lines[:20]:
            sample = json.loads(line)
            assert set(sample) == {"agent", "variant", "ts", "lag"}
            assert sample["variant"] >= 1  # only followers replay
            assert sample["lag"] >= 0


class TestReport:
    def test_report_covers_all_agents_and_sums_exactly(
            self, nginx_results):
        report = render_report(nginx_results)
        assert "## Agent comparison" in report
        for result in nginx_results:
            assert f"## {result['agent']}" in report
            profile = result["profile"]
            # The acceptance invariant, checked on the data the report
            # renders: category totals sum exactly to the run total.
            assert profile["total_cycles"] == pytest.approx(
                sum(profile["per_category"].values()))
            assert result["verdict"] == "clean"
        assert "Cross-variant lag" in report

    def test_single_agent_report_skips_comparison(self, nginx_results):
        report = render_report(nginx_results[:1])
        assert "## Agent comparison" not in report
        assert "## wall_of_clocks" not in report  # only agent [0]
        assert f"## {nginx_results[0]['agent']}" in report
