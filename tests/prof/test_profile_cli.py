"""End-to-end CLI: ``repro profile`` and ``repro bench --compare``."""

import json

from repro.cli import main


class TestProfileCommand:
    def test_unknown_benchmark_is_usage_error(self, capsys):
        assert main(["profile", "no-such-bench"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_nginx_all_agents_writes_artifacts(self, capsys, tmp_path):
        flame = tmp_path / "flame.txt"
        lag = tmp_path / "lag.jsonl"
        report = tmp_path / "report.md"
        assert main(["profile", "nginx", "--agent", "all",
                     "--flame-out", str(flame),
                     "--lag-out", str(lag),
                     "--report-out", str(report)]) == 0
        out = capsys.readouterr().out
        for agent in ("total_order", "partial_order", "wall_of_clocks"):
            assert agent in out
        assert flame.read_text().strip()
        assert lag.read_text().strip()
        text = report.read_text()
        assert "## Agent comparison" in text
        assert "sum to this exactly" in text

    def test_report_printed_without_out_flags(self, capsys):
        assert main(["profile", "fft", "--scale", "0.05",
                     "--agent", "wall_of_clocks"]) == 0
        out = capsys.readouterr().out
        assert "# repro profile: fft" in out
        assert "guest-compute" in out

    def test_artifacts_identical_across_jobs(self, tmp_path):
        def artifacts(jobs, tag):
            flame = tmp_path / f"flame-{tag}.txt"
            lag = tmp_path / f"lag-{tag}.jsonl"
            report = tmp_path / f"report-{tag}.md"
            assert main(["profile", "nginx", "--agent", "all",
                         "--jobs", str(jobs),
                         "--flame-out", str(flame),
                         "--lag-out", str(lag),
                         "--report-out", str(report)]) == 0
            return (flame.read_bytes(), lag.read_bytes(),
                    report.read_bytes())

        assert artifacts(1, "j1") == artifacts(4, "j4")


class TestBenchCompareCLI:
    def _bench(self, tmp_path, name, extra=()):
        out = tmp_path / name
        code = main(["bench", "--quick", "-o", str(out), *extra])
        return code, out

    def test_compare_against_self_generated_reference(self, capsys,
                                                      tmp_path):
        code, ref = self._bench(tmp_path, "ref.json")
        assert code == 0
        code, new = self._bench(tmp_path, "new.json",
                                ("--compare", str(ref)))
        assert code == 0
        out = capsys.readouterr().out
        assert "digest identical" in out
        # The fresh report accumulated the reference into its history.
        trajectory = json.loads(new.read_text())["trajectory"]
        assert len(trajectory) == 1
        assert (trajectory[0]["digest"]
                == json.loads(ref.read_text())["digest"])

    def test_injected_regression_exits_nonzero(self, capsys, tmp_path):
        code, ref = self._bench(tmp_path, "ref.json")
        assert code == 0
        doctored = json.loads(ref.read_text())
        doctored["digest"] = "sha256:" + "0" * 64
        doctored_path = tmp_path / "doctored.json"
        doctored_path.write_text(json.dumps(doctored))
        code, _ = self._bench(tmp_path, "new.json",
                              ("--compare", str(doctored_path)))
        assert code == 1
        assert "digest-divergence" in capsys.readouterr().out

    def test_diff_two_reports(self, capsys, tmp_path):
        _, ref = self._bench(tmp_path, "a.json")
        _, new = self._bench(tmp_path, "b.json")
        capsys.readouterr()
        assert main(["bench", "diff", str(ref), str(new)]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_diff_requires_two_paths(self, capsys, tmp_path):
        _, ref = self._bench(tmp_path, "a.json")
        assert main(["bench", "diff", str(ref)]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_compare_missing_reference_is_usage_error(self, capsys,
                                                      tmp_path):
        code = main(["bench", "--quick",
                     "-o", str(tmp_path / "x.json"),
                     "--compare", str(tmp_path / "missing.json")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestObsCLIErrors:
    """``repro obs`` surfaces artifact problems as one-line errors."""

    def test_missing_bundle(self, capsys, tmp_path):
        assert main(["obs", "summarize",
                     str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro obs:")
        assert "Traceback" not in err

    def test_empty_bundle(self, capsys, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert main(["obs", "summarize", str(path)]) == 2
        assert "empty" in capsys.readouterr().err

    def test_truncated_bundle(self, capsys, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"version": 1, "tails": {"0"')
        assert main(["obs", "convert", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_bundle(self, capsys, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert main(["obs", "summarize", str(path)]) == 2
        assert "bundle object" in capsys.readouterr().err
