"""The bench regression gate (repro.prof.regress)."""

import copy
import json

import pytest

from repro.errors import ReproError
from repro.prof.regress import (
    compare_reports,
    exit_code,
    load_report,
    render_findings,
    trajectory_entry,
)


def make_report(**overrides):
    report = {
        "kind": "repro-bench",
        "format_version": 2,
        "generated_unix": 1700000000,
        "jobs": 1,
        "quick": True,
        "matrix": {"benchmarks": ["fft", "dedup"],
                   "agents": ["wall_of_clocks"],
                   "variant_counts": [2], "scale": 0.05, "seed": 1,
                   "cells": 2},
        "serial": {"wall_s": 10.0, "ok": 2, "failed": 0,
                   "cell_wall_s": [4.0, 6.0]},
        "parallel": None,
        "speedup": None,
        "identical": None,
        "digest": "sha256:abc",
        "profile": {"benchmark": "fft", "agent": "wall_of_clocks",
                    "variants": 2,
                    "per_category": {"guest-compute": 800.0,
                                     "agent-wait": 200.0},
                    "total_cycles": 1000.0,
                    "machine_cycles": 500.0},
        "trajectory": [],
    }
    report.update(overrides)
    return report


def levels(findings):
    return {f.code: f.level for f in findings}


class TestLoadReport:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_report(str(tmp_path / "nope.json"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_report(str(path))

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text(json.dumps(make_report())[:40])
        with pytest.raises(ReproError, match="not valid JSON"):
            load_report(str(path))

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ReproError, match="repro-bench"):
            load_report(str(path))

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(make_report()))
        assert load_report(str(path))["digest"] == "sha256:abc"


class TestCompare:
    def test_identical_reports_pass(self):
        findings = compare_reports(make_report(), make_report())
        assert exit_code(findings) == 0
        assert all(f.level == "info" for f in findings)

    def test_matrix_mismatch_fails_early(self):
        other = make_report()
        other["matrix"] = dict(other["matrix"], scale=0.1)
        findings = compare_reports(make_report(), other)
        assert levels(findings) == {"matrix-mismatch": "fail"}
        assert exit_code(findings) == 1

    def test_digest_divergence_fails(self):
        findings = compare_reports(make_report(digest="sha256:def"),
                                   make_report())
        assert levels(findings)["digest-divergence"] == "fail"
        assert exit_code(findings) == 1

    def test_wall_regression_warns_by_default(self):
        slow = make_report()
        slow["serial"] = dict(slow["serial"], wall_s=20.0)
        findings = compare_reports(slow, make_report())
        assert levels(findings)["serial-wall"] == "warn"
        assert exit_code(findings) == 0

    def test_fail_on_wall_promotes(self):
        slow = make_report()
        slow["serial"] = dict(slow["serial"], wall_s=20.0)
        findings = compare_reports(slow, make_report(),
                                   fail_on_wall=True)
        assert levels(findings)["serial-wall"] == "fail"
        assert exit_code(findings) == 1

    def test_wall_within_tolerance_is_info(self):
        near = make_report()
        near["serial"] = dict(near["serial"], wall_s=11.0)
        findings = compare_reports(near, make_report())
        assert levels(findings)["serial-wall"] == "info"

    def test_cell_wall_offenders_reported(self):
        slow = make_report()
        slow["serial"] = dict(slow["serial"],
                              cell_wall_s=[4.0, 12.0])
        findings = compare_reports(slow, make_report())
        assert levels(findings)["cell-wall"] == "warn"
        assert "cell 1" in next(f for f in findings
                                if f.code == "cell-wall").message

    def test_profile_shift_fails(self):
        shifted = make_report()
        shifted["profile"] = dict(
            shifted["profile"],
            per_category={"guest-compute": 700.0,
                          "agent-wait": 300.0})
        findings = compare_reports(shifted, make_report())
        assert levels(findings)["profile-shift"] == "fail"
        assert exit_code(findings) == 1

    def test_failed_cells_fail(self):
        broken = make_report()
        broken["serial"] = dict(broken["serial"], failed=1, ok=1)
        findings = compare_reports(broken, make_report())
        assert levels(findings)["failed-cells"] == "fail"

    def test_pre_v2_reference_skips_profile_check(self):
        old = make_report(format_version=1)
        del old["profile"]
        findings = compare_reports(make_report(), old)
        assert levels(findings)["profile"] == "info"
        assert exit_code(findings) == 0

    def test_render_findings_mentions_verdict(self):
        good = render_findings(compare_reports(make_report(),
                                               make_report()))
        assert "ok" in good
        bad = render_findings(
            compare_reports(make_report(digest="sha256:def"),
                            make_report()))
        assert "REGRESSION" in bad


def make_overhead(**overrides):
    block = {
        "repeats": 3,
        "cell": {"sweep_id": "bench", "index": 0},
        "bare_wall_s": 1.0,
        "traced_wall_s": 1.02,
        "overhead_frac": 0.02,
        "spans_recorded": 3,
        "digest_identical": True,
    }
    block.update(overrides)
    return block


class TestOverheadGate:
    """The telemetry self-measurement: warn-only on cost growth, hard
    fail on output perturbation."""

    def test_matching_overhead_is_info(self):
        findings = compare_reports(
            make_report(observability_overhead=make_overhead()),
            make_report(observability_overhead=make_overhead()))
        assert levels(findings)["observability-overhead"] == "info"
        assert exit_code(findings) == 0

    def test_overhead_growth_warns_never_fails(self):
        grown = make_report(
            observability_overhead=make_overhead(overhead_frac=0.20))
        findings = compare_reports(
            grown, make_report(observability_overhead=make_overhead()))
        assert levels(findings)["observability-overhead"] == "warn"
        assert exit_code(findings) == 0
        message = next(f for f in findings
                       if f.code == "observability-overhead").message
        assert "pp" in message

    def test_tolerance_scales_with_noisy_reference(self):
        # A quick-matrix reference with a huge (tiny-cell) overhead
        # fraction: proportional jitter stays info, it does not warn.
        findings = compare_reports(
            make_report(
                observability_overhead=make_overhead(
                    overhead_frac=13.5)),
            make_report(
                observability_overhead=make_overhead(
                    overhead_frac=12.8)))
        assert levels(findings)["observability-overhead"] == "info"

    def test_digest_perturbation_hard_fails(self):
        broken = make_report(
            observability_overhead=make_overhead(
                digest_identical=False))
        findings = compare_reports(
            broken,
            make_report(observability_overhead=make_overhead()))
        assert levels(findings)["telemetry-perturbation"] == "fail"
        assert exit_code(findings) == 1

    def test_reference_without_block_is_info(self):
        findings = compare_reports(
            make_report(observability_overhead=make_overhead()),
            make_report())
        assert levels(findings)["observability-overhead"] == "info"
        assert "reference has no observability_overhead" in next(
            f for f in findings
            if f.code == "observability-overhead").message

    def test_new_report_without_block_stays_silent(self):
        findings = compare_reports(
            make_report(),
            make_report(observability_overhead=make_overhead()))
        assert "observability-overhead" not in levels(findings)
        assert "telemetry-perturbation" not in levels(findings)
        assert exit_code(findings) == 0


class TestTrajectory:
    def test_entry_is_compact(self):
        entry = trajectory_entry(make_report())
        assert entry == {
            "generated_unix": 1700000000,
            "format_version": 2,
            "digest": "sha256:abc",
            "cells": 2,
            "jobs": 1,
            "serial_wall_s": 10.0,
            "identical": None,
        }

    def test_entry_records_environment_and_warm_wall(self):
        report = make_report(
            environment="process",
            parallel={"wall_s": 5.0, "ok": 2, "failed": 0,
                      "warm_wall_s": 4.3219})
        entry = trajectory_entry(report)
        assert entry["environment"] == "process"
        assert entry["warm_wall_s"] == 4.322
        # Pre-environment references keep the historical entry shape.
        assert "environment" not in trajectory_entry(make_report())

    def test_comparison_does_not_mutate_inputs(self):
        new, ref = make_report(), make_report()
        before = copy.deepcopy((new, ref))
        compare_reports(new, ref)
        assert (new, ref) == before
