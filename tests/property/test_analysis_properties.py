"""Property-based tests over the static analysis pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.identify import identify_sync_ops
from repro.analysis.ir import (
    AddrOf,
    Copy,
    Function,
    HeapAlloc,
    Instruction,
    Module,
    Reg,
    mem,
)
from repro.analysis.pointsto import AndersenAnalysis, SteensgaardAnalysis
from repro.workloads.spec import WorkloadSpec, plan_slice

# -- random pointer-fact programs -------------------------------------------

pointer_names = st.sampled_from([f"p{i}" for i in range(6)])
object_names = st.sampled_from([f"obj{i}" for i in range(4)])

pointer_facts = st.lists(
    st.one_of(
        st.builds(AddrOf, dst=pointer_names, obj=object_names),
        st.builds(Copy, dst=pointer_names, src=pointer_names),
        st.builds(HeapAlloc, dst=pointer_names,
                  site_id=st.sampled_from(["h1", "h2", "h3"]),
                  type_name=st.sampled_from(["A", "B"])),
    ),
    max_size=20)


def module_from_facts(facts) -> Module:
    return Module(name="prop", functions=[
        Function(name="f", instructions=[], pointer_facts=list(facts))])


class TestPointsToProperties:
    @settings(max_examples=60, deadline=None)
    @given(facts=pointer_facts)
    def test_andersen_is_at_most_steensgaard(self, facts):
        """Subset-based analysis is never less precise than unification:
        pts_andersen(p) ⊆ pts_steensgaard(p) for every pointer.  (The
        reverse direction is the §4.3.1 imprecision.)"""
        module = module_from_facts(facts)
        andersen = AndersenAnalysis(module)
        steensgaard = SteensgaardAnalysis(module)
        for index in range(6):
            pointer = f"p{index}"
            assert andersen.points_to(pointer) <= \
                steensgaard.points_to(pointer)

    @settings(max_examples=60, deadline=None)
    @given(facts=pointer_facts)
    def test_addrof_always_included(self, facts):
        """Soundness floor: p = &x implies x in pts(p) for both."""
        module = module_from_facts(facts)
        andersen = AndersenAnalysis(module)
        steensgaard = SteensgaardAnalysis(module)
        for fact in facts:
            if isinstance(fact, AddrOf):
                assert fact.obj in andersen.points_to(fact.dst)
                assert fact.obj in steensgaard.points_to(fact.dst)

    @settings(max_examples=40, deadline=None)
    @given(facts=pointer_facts)
    def test_may_alias_symmetric(self, facts):
        module = module_from_facts(facts)
        for analysis in (AndersenAnalysis(module),
                         SteensgaardAnalysis(module)):
            for left in ("p0", "p1", "p2"):
                for right in ("p3", "p4", "p5"):
                    assert (analysis.may_alias(left, right)
                            == analysis.may_alias(right, left))


class TestIdentificationProperties:
    @settings(max_examples=40, deadline=None)
    @given(facts=pointer_facts, n_plain=st.integers(0, 10))
    def test_type3_only_from_marked_roots(self, facts, n_plain):
        """A plain access is type (iii) only if some locked instruction
        exists — no roots, no type (iii) (Listing 2's soundness shape)."""
        module = module_from_facts(facts)
        for index in range(n_plain):
            module.functions.append(Function(
                name=f"plain{index}",
                instructions=[Instruction("mov",
                                          (Reg("eax"), mem("p0")))]))
        report = identify_sync_ops(module)
        assert report.type1 == [] and report.type2 == []
        assert report.type3 == []


class TestPlanProperties:
    @settings(max_examples=60, deadline=None)
    @given(runtime=st.floats(min_value=1.0, max_value=200.0),
           syscall_k=st.floats(min_value=0.0, max_value=200.0),
           sync_k=st.floats(min_value=0.0, max_value=20_000.0),
           scale=st.floats(min_value=0.05, max_value=1.0))
    def test_plan_always_bounded(self, runtime, syscall_k, sync_k, scale):
        spec = WorkloadSpec(name="prop", suite="parsec",
                            native_runtime_s=runtime,
                            syscall_rate_k=syscall_k,
                            sync_rate_k=sync_k)
        plan = plan_slice(spec, scale=scale)
        assert 0 < plan.duration_s <= min(0.050, runtime)
        # The budget binds except when the minimum slice length floors
        # the duration for extreme rates.
        floor_ops = sync_k * 1000 * 0.00005
        assert plan.sync_ops_total <= max(5_000 * scale, 200,
                                          floor_ops) * 1.01
        assert plan.gap_cycles >= 50.0
        assert plan.syscalls_total >= 1
