"""Property-based tests over the core data structures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.agents.clocks import ClockWall, clock_for_address
from repro.core.buffers import (
    ConsumptionWindow,
    MultiProducerLog,
    SPSCBuffer,
    SyncRecord,
)
from repro.kernel.fdtable import FDTable
from repro.perf.contention import SharedLineModel, coherence_cycles
from repro.perf.costs import CostModel

addresses = st.integers(min_value=0x1000, max_value=0x7FFF_FFFF_FFFF)


class TestClockHashProperties:
    @given(addresses)
    def test_hash_in_range(self, addr):
        for n_clocks in (1, 7, 512):
            assert 0 <= clock_for_address(addr, n_clocks) < n_clocks

    @given(addresses)
    def test_granule_aliasing(self, addr):
        """All addresses within one 8-byte granule share a clock."""
        base = addr & ~0x7
        clocks = {clock_for_address(base + off) for off in range(8)}
        assert len(clocks) == 1

    @given(addresses, st.integers(min_value=1, max_value=64))
    def test_deterministic(self, addr, n_clocks):
        assert (clock_for_address(addr, n_clocks)
                == clock_for_address(addr, n_clocks))


class TestClockWallProperties:
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=200))
    def test_tick_counts_match_reads(self, ticks):
        wall = ClockWall(16)
        for clock_id in ticks:
            wall.tick(clock_id)
        for clock_id in range(16):
            assert wall.read(clock_id) == ticks.count(clock_id)

    @given(st.integers(min_value=0, max_value=7))
    def test_tick_returns_pre_increment(self, clock_id):
        wall = ClockWall(8)
        for expected in range(5):
            assert wall.tick(clock_id) == expected


class TestLogProperties:
    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=60))
    def test_per_thread_positions_partition_the_log(self, threads):
        log = MultiProducerLog()
        for thread in threads:
            log.append(SyncRecord(thread=thread, addr=0, site="s"))
        positions = []
        for thread in "abc":
            for index in range(log.thread_entry_count(thread)):
                position = log.thread_entry_position(thread, index)
                assert log.entry(position).thread == thread
                positions.append(position)
        assert sorted(positions) == list(range(len(threads)))

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=60))
    def test_per_thread_positions_are_increasing(self, threads):
        log = MultiProducerLog()
        for thread in threads:
            log.append(SyncRecord(thread=thread, addr=0, site="s"))
        for thread in "abc":
            series = [log.thread_entry_position(thread, i)
                      for i in range(log.thread_entry_count(thread))]
            assert series == sorted(series)


class TestConsumptionWindowProperties:
    @given(st.permutations(list(range(24))))
    def test_frontier_reaches_end_in_any_order(self, order):
        window = ConsumptionWindow()
        for position in order:
            window.mark_consumed(position, "t")
        assert window.frontier == 24
        assert window.window_size() == 0

    @given(st.permutations(list(range(16))))
    def test_is_consumed_consistent(self, order):
        window = ConsumptionWindow()
        seen = set()
        for position in order:
            window.mark_consumed(position, "t")
            seen.add(position)
            for probe in range(16):
                assert window.is_consumed(probe) == (probe in seen)


class TestSPSCBufferProperties:
    @given(st.lists(st.integers(), max_size=50),
           st.integers(min_value=1, max_value=3))
    def test_each_consumer_sees_fifo(self, values, consumers):
        buffer = SPSCBuffer("p")
        for value in values:
            buffer.produce(SyncRecord(thread="p", addr=value, site="s"))
        for consumer in range(1, consumers + 1):
            drained = []
            while True:
                record = buffer.peek(consumer)
                if record is None:
                    break
                drained.append(record.addr)
                buffer.advance(consumer)
            assert drained == values


class TestFDTableProperties:
    @given(st.lists(st.booleans(), max_size=40))
    def test_lowest_free_invariant(self, ops):
        """After any open/close sequence, a new FD is always the lowest
        unused number (the §3.1 semantics)."""
        table = FDTable()
        open_fds = [0, 1, 2]
        for do_open in ops:
            if do_open or len(open_fds) <= 3:
                fd = table.install("file", object()).fd
                assert fd == min(set(range(fd + 2)) - set(open_fds))
                open_fds.append(fd)
            else:
                victim = open_fds.pop()
                if victim > 2:
                    table.close(victim)
                else:
                    open_fds.append(victim)
        assert sorted(table.open_fds()) == sorted(set(open_fds))


class TestContentionProperties:
    @given(st.lists(st.sampled_from(["t1", "t2", "t3", "t4"]),
                    min_size=1, max_size=100))
    def test_sharers_bounded_by_distinct_threads(self, accesses):
        line = SharedLineModel(window=16)
        for thread in accesses:
            sharers = line.access(thread)
            assert 0 <= sharers < 4

    def test_single_thread_never_pays(self):
        line = SharedLineModel()
        assert all(line.access("only") == 0 for _ in range(50))

    @given(st.integers(min_value=0, max_value=64))
    def test_coherence_cycles_monotone(self, sharers):
        costs = CostModel()
        assert (coherence_cycles(costs, sharers)
                <= coherence_cycles(costs, sharers + 1))

    def test_zero_sharers_free(self):
        assert coherence_cycles(CostModel(), 0) == 0.0
