"""Property-based tests for the deadlock machinery.

Three laws:

* the static lock-order pass flags a module iff a reference DFS finds a
  cycle in the union of its random acquisition orderings;
* the runtime wait-for-graph walk agrees with a reference graph search
  on random hold/wait states;
* the LockHeldAnalysis fixpoint terminates on random CFGs with values
  that respect the intersection-join (must-hold) lattice laws.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import LockHeldAnalysis, solve
from repro.analysis.ir import (AddrOf, Function, Instruction, Module, Reg,
                               imm, mem)
from repro.analysis.lockorder import analyze_module
from repro.races.deadlock import DeadlockDetector

LOCKS = [f"L{i}" for i in range(4)]

# -- random acquisition histories -> static lock-order ----------------------

#: One nesting: acquire ``outer`` then ``inner`` (released in LIFO order).
nestings = st.lists(
    st.tuples(st.sampled_from(LOCKS), st.sampled_from(LOCKS))
    .filter(lambda pair: pair[0] != pair[1]),
    min_size=0, max_size=8)


def module_from_nestings(pairs) -> Module:
    module = Module(name="prop")
    for index, (outer, inner) in enumerate(pairs):
        outer_ptr, inner_ptr = f"po{index}", f"pi{index}"
        module.functions.append(Function(
            name=f"f{index}",
            instructions=[
                Instruction("cmpxchg", (mem(outer_ptr), Reg("eax")),
                            lock_prefix=True, site=f"s{index}.outer",
                            source=("prop.c", index * 10)),
                Instruction("cmpxchg", (mem(inner_ptr), Reg("eax")),
                            lock_prefix=True, site=f"s{index}.inner",
                            source=("prop.c", index * 10 + 1)),
                Instruction("mov", (mem(inner_ptr), imm(0))),
                Instruction("mov", (mem(outer_ptr), imm(0))),
            ],
            pointer_facts=[AddrOf(outer_ptr, outer),
                           AddrOf(inner_ptr, inner)]))
    return module


def reference_has_cycle(edges) -> bool:
    """Plain DFS three-color cycle check over the edge set."""
    graph: dict[str, set[str]] = {}
    for first, second in edges:
        graph.setdefault(first, set()).add(second)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in
             set(graph) | {s for t in graph.values() for s in t}}

    def visit(node) -> bool:
        color[node] = GRAY
        for succ in graph.get(node, ()):
            if color[succ] == GRAY:
                return True
            if color[succ] == WHITE and visit(succ):
                return True
        color[node] = BLACK
        return False

    return any(visit(node) for node in color if color[node] == WHITE)


class TestLockOrderProperties:
    @settings(max_examples=60, deadline=None)
    @given(pairs=nestings)
    def test_candidates_iff_reference_cycle(self, pairs):
        report = analyze_module(module_from_nestings(pairs))
        assert report.edges == frozenset(pairs)
        assert bool(report.candidates) == reference_has_cycle(pairs)

    @settings(max_examples=60, deadline=None)
    @given(pairs=nestings)
    def test_every_candidate_cycle_is_a_real_cycle(self, pairs):
        report = analyze_module(module_from_nestings(pairs))
        edge_set = set(pairs)
        for candidate in report.candidates:
            count = len(candidate.cycle)
            for i, first in enumerate(candidate.cycle):
                assert (first, candidate.cycle[(i + 1) % count]) in edge_set
            assert candidate.witnesses

    @settings(max_examples=40, deadline=None)
    @given(pairs=nestings)
    def test_analysis_is_deterministic(self, pairs):
        one = analyze_module(module_from_nestings(pairs))
        two = analyze_module(module_from_nestings(pairs))
        assert [c.cycle for c in one.candidates] == \
            [c.cycle for c in two.candidates]


# -- random hold/wait states -> runtime wait-for graph -----------------------

THREADS = [f"t{i}" for i in range(4)]
WORDS = [0x10, 0x20, 0x30, 0x40]

#: thread index -> (word it holds, word it waits on).
hold_wait_states = st.lists(
    st.tuples(st.sampled_from(WORDS), st.sampled_from(WORDS)),
    min_size=1, max_size=4)


class TestWaitForGraphProperties:
    @settings(max_examples=80, deadline=None)
    @given(states=hold_wait_states)
    def test_detector_agrees_with_reference_cycle_check(self, states):
        detector = DeadlockDetector()
        holder_of: dict[int, str] = {}
        for index, (hold, _want) in enumerate(states):
            tid = f"v0:{THREADS[index]}"
            if hold not in holder_of:  # first claimant owns the word
                holder_of[hold] = tid
                detector.on_sync_op(
                    type("VM", (), {"index": 0})(),
                    type("T", (), {"global_id": tid})(),
                    type("Op", (), {"op": "cas", "addr": hold,
                                    "args": (0, 1), "site": None})(),
                    0)
        for index, (_hold, want) in enumerate(states):
            detector.on_futex_wait(0, f"v0:{THREADS[index]}", want)
        # Reference: edge waiter -> holder(wanted word), cycle via DFS.
        edges = []
        for index, (_hold, want) in enumerate(states):
            holder = holder_of.get(want)
            if holder is not None:
                edges.append((f"v0:{THREADS[index]}", holder))
        assert detector.report.deadlocked == reference_has_cycle(edges)

    @settings(max_examples=80, deadline=None)
    @given(states=hold_wait_states)
    def test_records_name_genuinely_wedged_threads(self, states):
        detector = DeadlockDetector()
        holder_of: dict[int, str] = {}
        for index, (hold, _want) in enumerate(states):
            tid = f"v0:{THREADS[index]}"
            if hold not in holder_of:
                holder_of[hold] = tid
                detector._acquire(0, hold, tid, None)
        for index, (_hold, want) in enumerate(states):
            detector.on_futex_wait(0, f"v0:{THREADS[index]}", want)
        for record in detector.report.records:
            for thread in record.threads:
                assert thread.holds  # every cycle member owns something
                assert thread.wants in WORDS


# -- LockHeldAnalysis lattice laws on random CFGs ----------------------------


def pointsto(ptr):
    return frozenset({ptr[2:]}) if ptr.startswith("p_") else frozenset()


@st.composite
def random_functions(draw):
    """A random function over acquires/releases/branches with valid
    labels (every jump target exists)."""
    block_count = draw(st.integers(min_value=1, max_value=4))
    labels = [f"lab{i}" for i in range(block_count)]
    instructions = []
    for label in labels:
        instructions.append(Instruction("label", (label,)))
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            lock = draw(st.sampled_from(LOCKS))
            if draw(st.booleans()):
                instructions.append(Instruction(
                    "cmpxchg", (mem(f"p_{lock}"), Reg("eax")),
                    lock_prefix=True))
            else:
                instructions.append(Instruction(
                    "mov", (mem(f"p_{lock}"), imm(0))))
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            instructions.append(Instruction("ret", ()))
        elif choice == 1:
            instructions.append(Instruction(
                "jmp", (draw(st.sampled_from(labels)),)))
        else:
            instructions.append(Instruction(
                "jcc", (draw(st.sampled_from(labels)),)))
    return Function(name="f", instructions=instructions)


class TestFixpointProperties:
    @settings(max_examples=80, deadline=None)
    @given(function=random_functions())
    def test_terminates_within_budget_with_lattice_values(self, function):
        cfg = build_cfg(function)
        result = solve(cfg, LockHeldAnalysis(pointsto, frozenset(LOCKS)))
        # Termination is the raise-free return; values stay in the lattice.
        for block in cfg.blocks:
            for value in (result.value_before(block),
                          result.value_after(block)):
                if value is not None:
                    assert value <= frozenset(LOCKS)

    @settings(max_examples=80, deadline=None)
    @given(function=random_functions())
    def test_join_lower_bounds_incoming_edges(self, function):
        """Must-analysis soundness: a block's entry value is contained in
        every reached predecessor's exit value (intersection join)."""
        cfg = build_cfg(function)
        result = solve(cfg, LockHeldAnalysis(pointsto, frozenset(LOCKS)))
        for block in cfg.blocks:
            value_in = result.value_before(block)
            if value_in is None or block is cfg.entry:
                continue
            for pred in block.predecessors:
                pred_out = result.value_after(cfg.blocks[pred])
                if pred_out is not None:
                    assert value_in <= pred_out

    @settings(max_examples=60, deadline=None)
    @given(function=random_functions(),
           smaller=st.sets(st.sampled_from(LOCKS)),
           extra=st.sets(st.sampled_from(LOCKS)))
    def test_transfer_is_monotone(self, function, smaller, extra):
        """v1 ⊆ v2 implies transfer(i, v1) ⊆ transfer(i, v2) — the
        property the fixpoint budget diagnostic assumes."""
        problem = LockHeldAnalysis(pointsto, frozenset(LOCKS))
        v1 = frozenset(smaller)
        v2 = v1 | frozenset(extra)
        for instruction in function.instructions:
            out1 = problem.transfer_instruction(instruction, v1)
            out2 = problem.transfer_instruction(instruction, v2)
            assert out1 <= out2
