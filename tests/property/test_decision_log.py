"""Property-based tests of the DecisionLog serialization contract.

Hypothesis generates arbitrary well-formed decision streams (all four
record kinds, JSON-safe payloads including floats) and checks the two
invariants replay correctness rests on: write -> load is the identity,
and the canonical digest is stable under re-serialization — the digest
sealed into a footer still verifies after any number of load/write
round trips.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import DecisionLog

# JSON-safe scalars that round-trip exactly: ints within the double
# mantissa, finite floats (Python's json preserves repr round-trips),
# and printable-ish text.
_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)

_rng = st.fixed_dictionaries({
    "k": st.just("rng"),
    "m": st.sampled_from(["randrange", "random", "uniform"]),
    "v": _scalar,
    "i": st.integers(min_value=0, max_value=10**6),
})
_sync = st.fixed_dictionaries({
    "k": st.just("sync"),
    "t": st.integers(min_value=0, max_value=64),
    "o": st.sampled_from(["lock", "unlock", "wait", "signal"]),
    "s": st.text(max_size=12),
    "v": _scalar,
    "i": st.integers(min_value=0, max_value=10**6),
})
_sys = st.fixed_dictionaries({
    "k": st.just("sys"),
    "t": st.integers(min_value=0, max_value=64),
    "n": st.sampled_from(["read", "write", "futex", "clone"]),
    "r": st.text(max_size=24),
    "i": st.integers(min_value=0, max_value=10**6),
})
_wake = st.fixed_dictionaries({
    "k": st.just("wake"),
    "a": st.integers(min_value=0, max_value=2**32),
    "w": st.lists(st.integers(min_value=0, max_value=64), max_size=6),
    "i": st.integers(min_value=0, max_value=10**6),
})

_records = st.lists(st.one_of(_rng, _sync, _sys, _wake), max_size=40)
_spec = st.dictionaries(
    st.sampled_from(["workload", "agent", "variants", "seed", "scale"]),
    _scalar, min_size=1, max_size=5)


def _round_trip(log: DecisionLog) -> DecisionLog:
    fd, path = tempfile.mkstemp(suffix=".decisions.jsonl")
    os.close(fd)
    try:
        log.write(path)
        return DecisionLog.load(path)
    finally:
        os.unlink(path)


class TestDecisionLogRoundTrip:
    @given(spec=_spec, records=_records)
    @settings(max_examples=60, deadline=None)
    def test_write_load_is_identity(self, spec, records):
        log = DecisionLog(spec=spec)
        for record in records:
            log.append(record)
        loaded = _round_trip(log)
        assert loaded.spec == log.spec
        assert loaded.records == log.records
        assert loaded.digest() == log.digest()

    @given(spec=_spec, records=_records)
    @settings(max_examples=60, deadline=None)
    def test_digest_stable_under_reserialization(self, spec, records):
        log = DecisionLog(spec=spec)
        for record in records:
            log.append(record)
        sealed = log.seal(verdict="clean", cycles=1.0, obs_digest=None,
                          steps=len(records))
        once = _round_trip(log)
        twice = _round_trip(once)
        # The digest the footer carries still verifies after two full
        # load/write round trips, and the footer itself survives.
        assert twice.digest() == sealed["digest"]
        assert once.footer == sealed
        assert twice.footer == sealed

    @given(records=_records)
    @settings(max_examples=30, deadline=None)
    def test_sealing_does_not_move_the_digest(self, records):
        log = DecisionLog(spec={"workload": "nginx"})
        for record in records:
            log.append(record)
        before = log.digest()
        log.seal(verdict="clean", cycles=0.0)
        assert log.digest() == before
