"""Fault-injection properties: a fault anywhere in any variant is always
detected as divergence, never a hang or a silent pass.

Hypothesis chooses which variant faults, at which loop step, and under
which scheduler seed; the MVEE must always produce a VARIANT_FAULT
divergence and never let any variant's final output escape.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.divergence import DivergenceKind
from repro.core.mvee import run_mvee
from repro.guest.program import GuestProgram
from repro.guest.sync import SpinLock
from repro.perf.costs import CostModel

FAST = CostModel(monitor_syscall_overhead=1_000.0)


class FaultInjectedProgram(GuestProgram):
    """A normal locking workload with a planted crash."""

    static_vars = ("lock", "counter")

    def __init__(self, fault_variant: int, fault_step: int,
                 fault_kind: str):
        self.fault_variant = fault_variant
        self.fault_step = fault_step
        self.fault_kind = fault_kind

    def main(self, ctx):
        role = yield from ctx.mvee_get_role()
        lock = SpinLock(ctx.static_addr("lock"))
        tid = yield from ctx.spawn(self.worker, lock, role)
        yield from ctx.join(tid)
        yield from ctx.printf("survived\n")
        return 0

    def worker(self, ctx, lock, role):
        for step in range(12):
            yield from ctx.compute(500)
            if role == self.fault_variant and step == self.fault_step:
                if self.fault_kind == "wild_read":
                    ctx.mem_load(0xDEAD_0000)
                else:
                    ctx.mem_store(ctx.vm.kernel.addr_space.bases
                                  .code_base, 0x90)  # write to code
            yield from lock.acquire(ctx)
            addr = ctx.static_addr("counter")
            ctx.mem_store(addr, ctx.mem_load(addr) + 1)
            yield from lock.release(ctx)
        return 0


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fault_variant=st.integers(min_value=0, max_value=1),
       fault_step=st.integers(min_value=0, max_value=11),
       fault_kind=st.sampled_from(["wild_read", "code_write"]),
       seed=st.integers(min_value=0, max_value=99),
       agent=st.sampled_from([None, "wall_of_clocks"]))
def test_any_fault_is_detected(fault_variant, fault_step, fault_kind,
                               seed, agent):
    program = FaultInjectedProgram(fault_variant, fault_step, fault_kind)
    outcome = run_mvee(program, variants=2, agent=agent, seed=seed,
                       costs=FAST, max_cycles=5e8)
    assert outcome.verdict == "divergence"
    assert outcome.divergence.kind is DivergenceKind.VARIANT_FAULT
    # The faulting variant is named in the report.
    assert f"variant {fault_variant} faulted" in outcome.divergence.detail
    # No variant's completion output escaped the kill.
    assert "survived" not in outcome.stdout
