"""Stress property: random fault plans never hang the simulator.

Hypothesis draws a seeded random :class:`FaultPlan`, a degradation
policy, and a watchdog setting; whatever the injector breaks, the MVEE
must terminate within a bounded cycle budget with one of the four
recognised verdicts — never an exception, never an unbounded spin.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan
from repro.perf.costs import CostModel
from tests.guestlib import MutexCounterProgram

FAST = CostModel(monitor_syscall_overhead=1_000.0,
                 preempt_quantum=20_000.0)

VERDICTS = {"clean", "degraded", "divergence", "deadlock"}


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan_seed=st.integers(min_value=0, max_value=10_000),
       policy=st.sampled_from(("kill-all", "quarantine", "restart")),
       watchdog=st.sampled_from((None, 300_000.0)))
def test_random_plans_always_terminate(plan_seed, policy, watchdog):
    plan = FaultPlan.random(plan_seed, n_variants=3, horizon=20)
    outcome = run_mvee(
        MutexCounterProgram(workers=3, iters=20),
        variants=3, seed=7, costs=FAST, faults=plan,
        policy=MonitorPolicy(degradation=policy,
                             watchdog_cycles=watchdog),
        max_cycles=40_000_000.0)
    assert outcome.verdict in VERDICTS
    assert outcome.cycles <= 40_000_000.0
    # Only planned faults fired, each at most once.
    assert len(outcome.faults) <= len(plan)
    # A degraded verdict always carries its quarantine evidence.
    if outcome.verdict == "degraded":
        assert outcome.quarantines


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan_seed=st.integers(min_value=0, max_value=10_000))
def test_random_plan_runs_are_repeatable(plan_seed):
    def once():
        return run_mvee(
            MutexCounterProgram(workers=3, iters=15),
            variants=3, seed=3, costs=FAST,
            faults=FaultPlan.random(plan_seed, n_variants=3,
                                    horizon=15),
            policy=MonitorPolicy(degradation="quarantine",
                                 watchdog_cycles=300_000.0),
            max_cycles=40_000_000.0)

    first, second = once(), once()
    assert first.verdict == second.verdict
    assert first.cycles == second.cycles
    assert ([f.to_dict() for f in first.faults]
            == [f.to_dict() for f in second.faults])
