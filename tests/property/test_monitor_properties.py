"""Detection properties of the strict monitor, quantified by hypothesis.

* **Soundness of tolerance**: any deterministic single-threaded syscall
  script runs clean under the MVEE — identical variants never produce
  false positives, regardless of script content or scheduling seed.
* **Completeness of detection**: perturb the script in exactly one
  variant — change one call's argument, insert a call, or drop a call —
  and the monitor always reports divergence, never a clean verdict.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.divergence import DivergenceKind
from repro.core.mvee import run_mvee
from repro.guest.program import GuestProgram
from repro.perf.costs import CostModel

FAST = CostModel(monitor_syscall_overhead=500.0)

#: A script step: which call to make, with a small argument payload.
script_steps = st.lists(
    st.tuples(st.sampled_from(["write", "getpid", "gettimeofday",
                               "stat"]),
              st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=8)


class ScriptedProgram(GuestProgram):
    """Executes a syscall script; optionally perturbed in one variant."""

    def __init__(self, script, perturb=None):
        self.script = script
        self.perturb = perturb  # None | ("mutate"|"insert"|"drop", idx)

    def _effective_script(self, role):
        if self.perturb is None or role == 0:
            return list(self.script)
        kind, index = self.perturb
        index %= len(self.script)
        script = list(self.script)
        if kind == "mutate":
            name, payload = script[index]
            script[index] = (name, payload + 1)
        elif kind == "insert":
            script.insert(index, ("getpid", 0))
        else:  # drop
            del script[index]
        return script

    def main(self, ctx):
        role = yield from ctx.mvee_get_role()
        for name, payload in self._effective_script(role):
            yield from ctx.compute(300)
            if name == "write":
                yield from ctx.write(1, f"w{payload}")
            elif name == "stat":
                yield from ctx.syscall("stat", f"/f{payload}")
            else:
                yield from ctx.syscall(name)
        return 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=script_steps, seed=st.integers(0, 99),
       variants=st.integers(2, 4))
def test_identical_variants_never_flagged(script, seed, variants):
    outcome = run_mvee(ScriptedProgram(script), variants=variants,
                       agent=None, seed=seed, costs=FAST,
                       max_cycles=1e9)
    assert outcome.verdict == "clean"


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=script_steps,
       perturb=st.tuples(st.sampled_from(["mutate", "insert", "drop"]),
                         st.integers(min_value=0, max_value=7)),
       seed=st.integers(0, 99))
def test_single_call_perturbations_always_detected(script, perturb,
                                                   seed):
    kind, index = perturb
    if kind == "mutate":
        # Mutating a payload only matters for calls that carry one.
        name, _ = script[index % len(script)]
        if name in ("getpid", "gettimeofday"):
            kind = "insert"
            perturb = (kind, index)
    outcome = run_mvee(ScriptedProgram(script, perturb), variants=2,
                       agent=None, seed=seed, costs=FAST,
                       max_cycles=1e9)
    assert outcome.verdict == "divergence"
    assert outcome.divergence.kind in (
        DivergenceKind.SYSCALL_MISMATCH,
        DivergenceKind.THREAD_EXIT_MISMATCH)
