"""Property-based tests of the headline replay invariant.

Hypothesis generates random data-race-free guest programs (random thread
counts, lock assignments, and critical-section patterns) and random
scheduler seeds; for every agent, the MVEE must replay them without
divergence and with identical per-thread syscall traces.  This is the
paper's Section 3 correctness claim quantified over program structure,
not just over the fixed test workloads.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mvee import MVEE
from repro.guest.program import GuestProgram
from repro.guest.sync import SpinLock
from repro.perf.costs import CostModel

FAST = CostModel(monitor_syscall_overhead=1_000.0)


class RandomDRFProgram(GuestProgram):
    """A random but data-race-free program: every shared-data access is
    protected by the lock that owns it."""

    name = "random_drf"

    def __init__(self, plan: list[list[tuple[int, int]]], n_locks: int):
        # plan[worker] = [(lock_index, compute_cycles), ...]
        self.plan = plan
        self.n_locks = n_locks

    def main(self, ctx):
        locks = [SpinLock(ctx.alloc_static(f"lock{i}"))
                 for i in range(self.n_locks)]
        for index in range(self.n_locks):
            ctx.alloc_static(f"value{index}")
        tids = yield from ctx.spawn_all(
            self.worker,
            [(locks, i, steps) for i, steps in enumerate(self.plan)])
        witnesses = yield from ctx.join_all(tids)
        digest = hash(tuple(witnesses)) & 0xFFFF
        yield from ctx.printf(f"digest={digest}\n")
        return digest

    def worker(self, ctx, locks, index, steps):
        witness = 0
        for lock_index, cycles in steps:
            yield from ctx.compute(cycles)
            yield from locks[lock_index].acquire(ctx)
            addr = ctx.static_addr(f"value{lock_index}")
            observed = ctx.mem_load(addr)
            ctx.mem_store(addr, observed + 1)
            witness = hash((witness, lock_index, observed))
            yield from locks[lock_index].release(ctx)
        return witness & 0xFFFFFFFF


program_plans = st.lists(                    # workers
    st.lists(                                # steps per worker
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=50, max_value=3_000)),
        min_size=1, max_size=12),
    min_size=2, max_size=4)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=program_plans,
       seed=st.integers(min_value=0, max_value=2**16),
       agent=st.sampled_from(["total_order", "partial_order",
                              "wall_of_clocks"]))
def test_random_drf_programs_replay_cleanly(plan, seed, agent):
    program = RandomDRFProgram(plan, n_locks=4)
    mvee = MVEE(program, variants=2, agent=agent, seed=seed,
                costs=FAST, record_trace=True, max_cycles=5e9)
    outcome = mvee.run()
    assert outcome.verdict == "clean"
    master = outcome.vms[0].per_thread_syscall_trace()
    assert outcome.vms[1].per_thread_syscall_trace() == master


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=program_plans, seed=st.integers(min_value=0, max_value=999))
def test_final_counters_match_plan_in_every_variant(plan, seed):
    """The final per-lock counter equals the number of plan steps that
    targeted that lock, in every variant: replay preserves the program's
    semantics, not just its syscall stream."""
    mvee = MVEE(RandomDRFProgram(plan, n_locks=4), variants=2,
                agent="wall_of_clocks", seed=seed, costs=FAST,
                max_cycles=5e9)
    outcome = mvee.run()
    assert outcome.verdict == "clean"
    per_lock = [0, 0, 0, 0]
    for steps in plan:
        for lock_index, _ in steps:
            per_lock[lock_index] += 1
    for vm in outcome.vms:
        space = vm.kernel.addr_space
        # Statics were allocated in declaration order: 4 lock words then
        # 4 value words, 8 bytes each, from the static base.
        base = space.bases.static_base
        values = [space.peek(base + 32 + 8 * i) for i in range(4)]
        assert values == per_lock
        locks = [space.peek(base + 8 * i) for i in range(4)]
        assert locks == [0, 0, 0, 0], "all locks released at exit"
