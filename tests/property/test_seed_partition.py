"""Property-based tests for the parallel engine's seed partitioning.

The engine's determinism contract rests on ``derive_cell_seed``: every
sweep cell gets a seed that is a pure function of ``(sweep_id,
cell_index, base_seed)``, so the same sweep yields bit-identical cells
whether it runs inline, across 2 workers, or across 32 — and no two
cells of one sweep ever share a seed.  Hypothesis drives the algebraic
claims; the final class checks the crash-isolation property end to end
with real forked workers.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.par.engine import CellTask, run_cells
from repro.par.seeds import derive_cell_seed

sweep_ids = st.text(min_size=1, max_size=24)
indices = st.integers(min_value=0, max_value=10_000)
base_seeds = st.integers(min_value=0, max_value=2**32)


class TestDerivationLaws:
    @given(sweep_ids, indices, base_seeds)
    def test_range(self, sweep_id, index, base_seed):
        seed = derive_cell_seed(sweep_id, index, base_seed)
        assert 0 <= seed < 2**63

    @given(sweep_ids, indices, base_seeds)
    def test_pure_function(self, sweep_id, index, base_seed):
        assert (derive_cell_seed(sweep_id, index, base_seed)
                == derive_cell_seed(sweep_id, index, base_seed))

    @given(sweep_ids, base_seeds,
           st.lists(indices, min_size=2, max_size=50, unique=True))
    def test_injective_over_cell_index(self, sweep_id, base_seed, cells):
        """Distinct cells of one sweep never collide."""
        seeds = [derive_cell_seed(sweep_id, index, base_seed)
                 for index in cells]
        assert len(set(seeds)) == len(seeds)

    @given(indices, base_seeds,
           st.lists(sweep_ids, min_size=2, max_size=20, unique=True))
    def test_sweeps_are_independent_streams(self, index, base_seed,
                                            sweeps):
        seeds = [derive_cell_seed(sweep_id, index, base_seed)
                 for sweep_id in sweeps]
        assert len(set(seeds)) == len(seeds)

    @given(sweep_ids, indices,
           st.lists(base_seeds, min_size=2, max_size=20, unique=True))
    def test_base_seed_separates(self, sweep_id, index, seeds):
        derived = [derive_cell_seed(sweep_id, index, base_seed)
                   for base_seed in seeds]
        assert len(set(derived)) == len(derived)

    @given(sweep_ids, base_seeds,
           st.lists(indices, min_size=1, max_size=30, unique=True))
    def test_stable_under_reordering(self, sweep_id, base_seed, cells):
        """A cell's seed does not depend on which other cells exist or
        in what order they are derived — the load balancer may hand
        cells to workers in any order."""
        forward = {index: derive_cell_seed(sweep_id, index, base_seed)
                   for index in cells}
        backward = {index: derive_cell_seed(sweep_id, index, base_seed)
                    for index in reversed(cells)}
        assert forward == backward

    @given(sweep_ids, indices, base_seeds)
    def test_no_separator_confusion(self, sweep_id, index, base_seed):
        """Sweep ids containing digits can't alias a neighbouring
        (index, base_seed) split."""
        a = derive_cell_seed(sweep_id + "1", index, base_seed)
        b = derive_cell_seed(sweep_id, int(f"1{index}"), base_seed)
        assert a != b


def _echo_cell(tag, seed=0):
    return {"tag": tag, "seed": seed, "pid": os.getpid()}


def _crash_cell(tag, seed=0):
    os._exit(17)


class TestCrashIsolation:
    """A dying worker fails its own cell only; sibling cells still
    return exactly what a serial run returns."""

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=3))
    def test_single_crash_isolated(self, crash_at):
        def tasks():
            return [CellTask.for_sweep(
                        "crashy", index,
                        _crash_cell if index == crash_at else _echo_cell,
                        {"tag": f"cell{index}"},
                        seed_key="seed")
                    for index in range(4)]

        serial = run_cells(
            [task for task in tasks() if task.index != crash_at],
            jobs=1)
        parallel = run_cells(tasks(), jobs=4)

        assert not parallel[crash_at].ok
        assert "worker died" in parallel[crash_at].error
        survivors = [result for result in parallel if result.ok]
        assert len(survivors) == 3
        # Survivors carry the same payloads (minus worker pids) the
        # serial run produced — indices and derived seeds included.
        def canon(results):
            return [(result.index,
                     result.value["tag"], result.value["seed"])
                    for result in results]
        assert canon(survivors) == canon(serial)

    def test_all_results_positionally_ordered(self):
        tasks = [CellTask.for_sweep("order", index, _echo_cell,
                                    {"tag": f"cell{index}"},
                                    seed_key="seed")
                 for index in range(6)]
        for jobs in (1, 3):
            results = run_cells(tasks, jobs=jobs)
            assert [result.index for result in results] == list(range(6))
            assert [result.value["tag"] for result in results] \
                == [f"cell{index}" for index in range(6)]
