"""Property-based tests for the race detector's vector clocks.

The happens-before detector is only as sound as its clock algebra:
join must be the least upper bound, ticks must be monotone, and epoch
ordering must agree with component-wise comparison.  Hypothesis drives
the laws; a final class pins that the race *report* is a deterministic
function of the run.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.races import Epoch, VectorClock, join

tids = st.sampled_from(["v0:t0", "v0:w1", "v1:t0", "v1:w2", "v2:w3"])
clock_maps = st.dictionaries(tids, st.integers(min_value=0, max_value=50),
                             max_size=5)
clocks = clock_maps.map(VectorClock)


class TestJoinLaws:
    @given(clocks, clocks)
    def test_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @given(clocks, clocks, clocks)
    def test_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(clocks)
    def test_idempotent(self, a):
        assert join(a, a) == a

    @given(clocks, clocks)
    def test_upper_bound(self, a, b):
        joined = join(a, b)
        assert joined.dominates(a) and joined.dominates(b)

    @given(clocks, clocks)
    def test_least_upper_bound(self, a, b):
        """No component of the join exceeds the max of the inputs."""
        joined = join(a, b)
        for tid, value in joined.items():
            assert value == max(a.get(tid), b.get(tid))

    @given(clocks, clocks)
    def test_inputs_unchanged(self, a, b):
        before_a, before_b = dict(a.items()), dict(b.items())
        join(a, b)
        assert dict(a.items()) == before_a
        assert dict(b.items()) == before_b


class TestMonotonicity:
    @given(clocks, tids)
    def test_tick_strictly_increases_own_component(self, vc, tid):
        before = vc.get(tid)
        vc.tick(tid)
        assert vc.get(tid) == before + 1

    @given(clocks, tids)
    def test_tick_preserves_dominance(self, vc, tid):
        snapshot = vc.copy()
        vc.tick(tid)
        assert vc.dominates(snapshot) and not snapshot.dominates(vc)

    @given(clocks, clocks)
    def test_join_in_place_absorbs(self, a, b):
        a.join(b)
        assert a.dominates(b)

    @given(clocks)
    def test_copy_is_independent(self, vc):
        dup = vc.copy()
        dup.tick("v0:t0")
        assert dup.get("v0:t0") == vc.get("v0:t0") + 1


class TestEpochOrdering:
    @given(clocks, tids)
    def test_own_epoch_happens_before_own_clock(self, vc, tid):
        vc.tick(tid)
        assert vc.epoch(tid).happens_before(vc)

    @given(clocks, tids, st.integers(min_value=1, max_value=10))
    def test_future_epoch_not_ordered(self, vc, tid, ahead):
        epoch = Epoch(clock=vc.get(tid) + ahead, tid=tid)
        assert not epoch.happens_before(vc)

    @given(clocks, clocks, tids)
    def test_happens_before_respects_join(self, a, b, tid):
        """An epoch ordered before ``a`` stays ordered after joining."""
        epoch = a.epoch(tid)
        if epoch.happens_before(a):
            assert epoch.happens_before(join(a, b))


class TestEquality:
    @given(clock_maps)
    def test_zero_components_do_not_distinguish(self, mapping):
        padded = dict(mapping)
        padded["v2:w3"] = padded.get("v2:w3", 0)
        assert VectorClock(mapping) == VectorClock(padded)

    @given(clocks)
    def test_unhashable(self, vc):
        import pytest

        with pytest.raises(TypeError):
            hash(vc)


class TestReportDeterminism:
    """The same seed must yield the identical race report, twice."""

    def _report(self, seed):
        from repro.core.mvee import run_mvee
        from repro.perf.costs import CostModel
        from repro.races import RaceDetector
        from tests.guestlib import MutexCounterProgram

        detector = RaceDetector(sync_sites=lambda site: False)
        run_mvee(MutexCounterProgram(workers=3, iters=10), variants=2,
                 agent="wall_of_clocks", seed=seed,
                 costs=CostModel(monitor_syscall_overhead=2_000.0,
                                 preempt_quantum=20_000.0),
                 races=detector)
        return detector.report

    def test_identical_reports_same_seed(self):
        first = self._report(seed=3)
        second = self._report(seed=3)
        assert [r.to_dict() for r in first.races] \
            == [r.to_dict() for r in second.races]
        assert first.occurrences == second.occurrences
        assert first.sync_ops_seen == second.sync_ops_seen
        assert first.plain_accesses_checked == second.plain_accesses_checked
