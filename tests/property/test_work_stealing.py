"""Property-based tests for the work-stealing scheduler.

The environment abstraction's determinism argument has three legs
(``docs/PERFORMANCE.md``): (1) the scheduler hands every cell out
exactly once no matter how worker requests interleave, (2) results are
slotted by task position so aggregation order never depends on
completion order, and (3) a cell's seed is a pure function of its index
— never of the worker that ran it.  Hypothesis drives randomized
interleavings of ``next_for`` calls to pin each leg: if any interleaving
could lose a cell, run one twice, or leak the victim choice into the
output, these properties would fail.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.par.seeds import derive_cell_seed
from repro.par.stealing import StealScheduler
from repro.par.transport import ListBuffer

counts = st.integers(min_value=0, max_value=64)
worker_counts = st.integers(min_value=1, max_value=8)


def drain(scheduler: StealScheduler, order: list[int]) -> list[int]:
    """Drive the scheduler with a worker-request interleaving.

    ``order`` picks which worker asks next; when it runs out (or a
    worker comes up empty-handed) the remaining cells are drained
    round-robin so every run ends with a fully handed-out sweep.
    """
    handed = []
    for worker in order:
        if scheduler.done():
            break
        position = scheduler.next_for(worker % scheduler.workers)
        if position is not None:
            handed.append(position)
    worker = 0
    while not scheduler.done():
        position = scheduler.next_for(worker % scheduler.workers)
        if position is not None:
            handed.append(position)
        worker += 1
    return handed


class TestExactlyOnce:
    @given(counts, worker_counts,
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_every_cell_handed_out_exactly_once(self, items, workers,
                                                order):
        scheduler = StealScheduler(items, workers)
        handed = drain(scheduler, order)
        assert sorted(handed) == list(range(items))
        assert scheduler.remaining == 0 and scheduler.done()

    @given(counts, worker_counts,
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_static_mode_also_exactly_once(self, items, workers, order):
        scheduler = StealScheduler(items, workers, stealing=False)
        handed = drain(scheduler, order)
        assert sorted(handed) == list(range(items))
        assert scheduler.stats()["steals"] == 0

    @given(counts, worker_counts)
    def test_exhausted_scheduler_keeps_returning_none(self, items,
                                                      workers):
        scheduler = StealScheduler(items, workers)
        drain(scheduler, [])
        for worker in range(workers):
            assert scheduler.next_for(worker) is None


class TestAggregationOrder:
    """Results land at their task position, so the collected output is
    in task order regardless of which worker ran what when."""

    @given(counts, worker_counts,
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_buffer_collects_in_task_order(self, items, workers, order):
        scheduler = StealScheduler(items, workers)
        buffer = ListBuffer(items)
        for position in drain(scheduler, order):
            buffer.put(position, f"cell-{position}")
        assert buffer.collect() == [f"cell-{i}" for i in range(items)]

    @given(st.integers(min_value=1, max_value=64), worker_counts,
           worker_counts,
           st.lists(st.integers(min_value=0, max_value=7), max_size=200),
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_output_independent_of_interleaving_and_width(
            self, items, workers_a, workers_b, order_a, order_b):
        """Two arbitrary schedules — different worker counts, different
        interleavings — aggregate to the same output."""
        def run(workers, order):
            scheduler = StealScheduler(items, workers)
            buffer = ListBuffer(items)
            for position in drain(scheduler, order):
                buffer.put(position, position * position)
            return buffer.collect()

        assert run(workers_a, order_a) == run(workers_b, order_b)


class TestSeedWorkerIndependence:
    """A cell's seed depends on (sweep_id, index, base_seed) only —
    handing the cell to a different worker cannot move it."""

    @given(st.integers(min_value=1, max_value=64), worker_counts,
           worker_counts, st.integers(min_value=0, max_value=2**32),
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_seed_schedule_is_invariant(self, items, workers_a,
                                        workers_b, base_seed, order):
        def seeds_by_position(workers, order):
            scheduler = StealScheduler(items, workers)
            seeds = {}
            for position in drain(scheduler, order):
                seeds[position] = derive_cell_seed("ws-prop", position,
                                                   base_seed)
            return seeds

        assert (seeds_by_position(workers_a, order)
                == seeds_by_position(workers_b, []))


class TestSchedulerShape:
    """Deterministic structure: initial partition and victim choice are
    pure functions of state, so identical request sequences replay to
    identical schedules."""

    @given(counts, worker_counts,
           st.lists(st.integers(min_value=0, max_value=7), max_size=200))
    def test_same_interleaving_same_schedule(self, items, workers,
                                             order):
        first = drain(StealScheduler(items, workers), order)
        second = drain(StealScheduler(items, workers), order)
        assert first == second

    @given(counts, worker_counts)
    def test_initial_partition_is_round_robin(self, items, workers):
        scheduler = StealScheduler(items, workers)
        for worker in range(workers):
            expected = len(range(worker, items, workers))
            assert scheduler.pending_of(worker) == expected

    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=64),
           st.integers(min_value=2, max_value=8))
    def test_idle_worker_steals_half_from_busiest(self, items, workers):
        scheduler = StealScheduler(items, workers)
        # Drain worker 0 completely, then ask again: it must steal.
        while scheduler.pending_of(0):
            scheduler.next_for(0)
        before = [scheduler.pending_of(w) for w in range(workers)]
        victim = max(range(1, workers), key=lambda w: (before[w], -w))
        if before[victim] == 0:
            assert scheduler.next_for(0) is None
            return
        position = scheduler.next_for(0)
        assert position is not None
        thief, chosen, moved = scheduler.steals[-1]
        assert (thief, chosen) == (0, victim)
        assert moved == (before[victim] + 1) // 2
        assert scheduler.pending_of(victim) == before[victim] - moved
