"""The coverage cross-check: the subsystem's headline acceptance test.

Un-instrumented nginx must yield gaps naming the custom primitives the
§5.5 analysis missed; the fully-identified run must be gap-free with
zero races.
"""

import pytest

from repro.core.mvee import run_mvee
from repro.perf.costs import CostModel
from repro.races import (
    REFACTOR,
    TREAT_VOLATILE,
    RaceDetector,
    corroborate,
    cross_check,
    primitive_of,
)
from tests.guestlib import VolatileFlagProgram

FAST = CostModel(monitor_syscall_overhead=2_000.0,
                 preempt_quantum=20_000.0)


class TestPrimitiveOf:
    def test_four_components(self):
        assert primitive_of("nginx.spinlock.lock.cmpxchg") \
            == "nginx.spinlock"

    def test_deep_labels_keep_prefix(self):
        assert primitive_of("libc.malloc.arena.lock.cmpxchg") \
            == "libc.malloc.arena"

    def test_short_labels_degrade(self):
        assert primitive_of("flag.store") == "flag"
        assert primitive_of("flag") == "flag"


class TestVolatileFlagGap:
    """The Listing-2 loop closed on the runtime side."""

    def _coverage(self):
        detector = RaceDetector()
        identified = lambda site: not site.startswith("volatile.")
        run_mvee(VolatileFlagProgram(), variants=2,
                 agent="wall_of_clocks", seed=1, costs=FAST,
                 instrument=identified, races=detector)
        # every site the run could have instrumented except the flag's
        from repro.guest.sync import LIBPTHREAD_SITES
        return cross_check(detector.report, LIBPTHREAD_SITES,
                           workload="volatile_flag")

    def test_gap_names_the_flag_primitive(self):
        coverage = self._coverage()
        assert not coverage.clean
        gap = coverage.gap_for("volatile.flag")
        assert gap is not None
        assert gap.sites <= {"volatile.flag.raise.store",
                             "volatile.flag.poll.load"}

    def test_plain_ops_suggest_volatile_remediation(self):
        gap = self._coverage().gap_for("volatile.flag")
        assert gap.ops <= {"load", "store"}
        assert gap.remediation == TREAT_VOLATILE


class TestNginxCrossCheck:
    """§5.5 before/after: the gap is visible, then closed."""

    @pytest.fixture(scope="class")
    def before(self):
        from repro.experiments.runner import (
            nginx_identified_sites,
            run_nginx_condition,
        )

        detector = RaceDetector()
        outcome = run_nginx_condition(False, detector=detector)
        coverage = cross_check(
            detector.report,
            nginx_identified_sites(after_refactor=False),
            workload="nginx/bare")
        return detector.report, outcome, coverage

    @pytest.fixture(scope="class")
    def after(self):
        from repro.experiments.runner import (
            nginx_identified_sites,
            run_nginx_condition,
        )

        detector = RaceDetector()
        outcome = run_nginx_condition(True, detector=detector)
        coverage = cross_check(
            detector.report,
            nginx_identified_sites(after_refactor=True),
            workload="nginx/full")
        return detector.report, outcome, coverage

    def test_bare_run_has_gaps(self, before):
        _, _, coverage = before
        assert not coverage.clean
        assert len(coverage.gaps) >= 1

    def test_gaps_name_custom_primitives(self, before):
        _, _, coverage = before
        primitives = {gap.primitive for gap in coverage.gaps}
        assert primitives <= {"nginx.spinlock", "nginx.queue"}
        assert "nginx.spinlock" in primitives

    def test_rmw_primitives_suggest_refactor(self, before):
        _, _, coverage = before
        spinlock = coverage.gap_for("nginx.spinlock")
        assert "cmpxchg" in "".join(spinlock.sites)
        assert spinlock.remediation == REFACTOR

    def test_missed_sites_are_nginx_only(self, before):
        _, _, coverage = before
        assert coverage.missed_sites()
        for site in coverage.missed_sites():
            assert site.startswith("nginx.")

    def test_bare_run_diverges(self, before):
        _, outcome, _ = before
        assert outcome.verdict != "clean"

    def test_full_instrumentation_closes_gap(self, after):
        report, outcome, coverage = after
        assert outcome.verdict == "clean"
        assert coverage.clean
        assert not report.races
        assert report.sync_ops_seen > 0

    def test_covered_races_counted(self, before):
        """Races at identified sites (if any) are covered, not gaps."""
        report, _, coverage = before
        attributed = sum(len(gap.races) for gap in coverage.gaps)
        assert attributed >= len(report.races) - coverage.covered_races


class TestCorroborate:
    class FakeLint:
        def __init__(self, sites):
            self._sites = set(sites)

        def candidate_sites(self):
            return self._sites

    def _gap_coverage(self):
        detector = RaceDetector()
        run_mvee(VolatileFlagProgram(), variants=2,
                 agent="wall_of_clocks", seed=1, costs=FAST,
                 instrument=lambda s: not s.startswith("volatile."),
                 races=detector)
        return cross_check(detector.report, frozenset(),
                           workload="volatile_flag")

    def test_lint_agreement_marked(self):
        coverage = corroborate(
            self._gap_coverage(),
            self.FakeLint({"volatile.flag.raise.store"}))
        gap = coverage.gap_for("volatile.flag")
        assert gap.lint_agrees is True

    def test_lint_disagreement_marked(self):
        coverage = corroborate(self._gap_coverage(),
                               self.FakeLint({"other.site"}))
        assert coverage.gap_for("volatile.flag").lint_agrees is False

    def test_accepts_list_of_lints(self):
        coverage = corroborate(
            self._gap_coverage(),
            [self.FakeLint(set()),
             self.FakeLint({"volatile.flag.poll.load"})])
        assert coverage.gap_for("volatile.flag").lint_agrees is True

    def test_unchecked_is_none(self):
        gap = self._gap_coverage().gap_for("volatile.flag")
        assert gap.lint_agrees is None


class TestReportSerialization:
    def test_to_dict_round_trips_key_fields(self):
        detector = RaceDetector()
        run_mvee(VolatileFlagProgram(), variants=2,
                 agent="wall_of_clocks", seed=1, costs=FAST,
                 instrument=lambda s: not s.startswith("volatile."),
                 races=detector)
        coverage = cross_check(detector.report, frozenset(),
                               workload="volatile_flag")
        data = coverage.to_dict()
        assert data["workload"] == "volatile_flag"
        assert data["gaps"]
        gap = data["gaps"][0]
        assert set(gap) >= {"primitive", "sites", "ops", "races",
                            "remediation", "lint_agrees"}
