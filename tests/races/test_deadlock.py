"""Dynamic deadlock detection: held-set/wait-for-graph unit tests plus
full MVEE integration on the dining-philosophers guest."""

from dataclasses import dataclass

import pytest

from repro.core.mvee import run_mvee
from repro.obs import ObsHub
from repro.perf.costs import CostModel
from repro.races import DeadlockDetector
from repro.races.deadlock import DeadlockRecord, DeadlockThread
from repro.workloads import DiningPhilosophers

FAST = CostModel(monitor_syscall_overhead=2_000.0,
                 preempt_quantum=20_000.0)


# -- unit-test doubles -------------------------------------------------------


@dataclass
class FakeVM:
    index: int = 0


@dataclass
class FakeThread:
    global_id: str = "v0:main"


@dataclass
class FakeSyncOp:
    op: str
    addr: int
    args: tuple = ()
    site: str | None = None


def cas(detector, tid, addr, expected, new, result, site=None, variant=0):
    detector.on_sync_op(FakeVM(variant), FakeThread(tid),
                        FakeSyncOp("cas", addr, (expected, new), site),
                        result)


def xchg(detector, tid, addr, new, result, site=None, variant=0):
    detector.on_sync_op(FakeVM(variant), FakeThread(tid),
                        FakeSyncOp("xchg", addr, (new,), site), result)


def store(detector, tid, addr, value, site=None, variant=0):
    detector.on_sync_op(FakeVM(variant), FakeThread(tid),
                        FakeSyncOp("store", addr, (value,), site), variant)


class TestStructuralClassification:
    def test_cas_acquire_and_release(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0x100, 0, 1, 0, site="m.lock")
        assert d.report.acquires_seen == 1
        assert d._holders[(0, 0x100)] == "v0:t1"
        cas(d, "v0:t1", 0x100, 1, 0, 1)
        assert d.report.releases_seen == 1
        assert (0, 0x100) not in d._holders

    def test_failed_cas_records_attempt_not_ownership(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0x100, 0, 1, 7)  # word was 7, CAS failed
        assert d.report.acquires_seen == 0
        assert d._last_attempt["v0:t1"] == (0x100, None)

    def test_trylock_refusal_counted(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0x100, 0, 1, 7, site="m.trylock.cmpxchg")
        assert d.report.guard_refusals == 1
        assert "m.trylock.cmpxchg" in d.report.guard_sites

    def test_xchg_protocol(self):
        d = DeadlockDetector()
        xchg(d, "v0:t1", 0x200, 2, 0, site="m.lock.xchg")  # got 0: acquired
        assert d.report.acquires_seen == 1
        xchg(d, "v0:t2", 0x200, 2, 2)  # got 2: contended attempt
        assert d.report.acquires_seen == 1
        assert d._last_attempt["v0:t2"] == (0x200, None)
        xchg(d, "v0:t1", 0x200, 0, 2)  # unlock
        assert d.report.releases_seen == 1

    def test_store_zero_releases_only_for_holder(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0x300, 0, 1, 0)
        store(d, "v0:t2", 0x300, 0)  # not the owner: ignored
        assert d.report.releases_seen == 0
        store(d, "v0:t1", 0x300, 0)
        assert d.report.releases_seen == 1

    def test_loads_are_inert(self):
        d = DeadlockDetector()
        d.on_sync_op(FakeVM(), FakeThread("v0:t1"),
                     FakeSyncOp("load", 0x100, (), "m.poll"), 1)
        d.on_sync_op(FakeVM(), FakeThread("v0:t1"),
                     FakeSyncOp("fetch_add", 0x100, (1,), "m.xadd"), 1)
        assert d.report.acquires_seen == 0
        assert d.report.releases_seen == 0
        assert "m.poll" in d.report.observed_sites


class TestWaitForGraph:
    def wedge_two(self, d):
        """t1 holds A wants B; t2 holds B wants A."""
        cas(d, "v0:t1", 0xA, 0, 1, 0, site="s.a")
        cas(d, "v0:t2", 0xB, 0, 1, 0, site="s.b")
        cas(d, "v0:t1", 0xB, 0, 1, 1, site="s.b")  # fails
        cas(d, "v0:t2", 0xA, 0, 1, 1, site="s.a")  # fails
        d.on_futex_wait(0, "v0:t1", 0xB)
        d.on_futex_wait(0, "v0:t2", 0xA)

    def test_abba_cycle_detected_at_formation(self):
        d = DeadlockDetector()
        self.wedge_two(d)
        assert d.report.deadlocked
        (record,) = d.report.records
        assert {t.thread for t in record.threads} == {"t1", "t2"}
        assert set(record.locks()) == {0xA, 0xB}
        assert record.sites() == frozenset({"s.a", "s.b"})

    def test_wants_site_comes_from_failed_attempt(self):
        d = DeadlockDetector()
        self.wedge_two(d)
        (record,) = d.report.records
        t1 = next(t for t in record.threads if t.thread == "t1")
        assert t1.wants == 0xB
        assert t1.wants_site == "s.b"
        assert t1.holds == (0xA,)
        assert t1.hold_sites == ("s.a",)

    def test_wait_on_unowned_word_is_no_cycle(self):
        d = DeadlockDetector()
        d.on_futex_wait(0, "v0:t1", 0xDEAD)
        assert not d.report.deadlocked
        assert d.report.waits_seen == 1

    def test_unwait_breaks_the_edge(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0xA, 0, 1, 0)
        cas(d, "v0:t2", 0xB, 0, 1, 0)
        d.on_futex_wait(0, "v0:t1", 0xB)
        d.on_futex_unwait("v0:t1")
        d.on_futex_wait(0, "v0:t2", 0xA)
        assert not d.report.deadlocked

    def test_wake_clears_edges(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0xA, 0, 1, 0)
        d.on_futex_wait(0, "v0:t2", 0xA)
        d.on_futex_wake(["v0:t2"])
        assert "v0:t2" not in d._waiting

    def test_duplicate_cycle_deduped(self):
        d = DeadlockDetector()
        self.wedge_two(d)
        d.on_futex_unwait("v0:t1")
        d.on_futex_wait(0, "v0:t1", 0xB)  # re-park on the same cycle
        assert len(d.report.records) == 1

    def test_three_thread_chain(self):
        d = DeadlockDetector()
        for i, (hold, _want) in enumerate([(0xA, 0xB), (0xB, 0xC),
                                           (0xC, 0xA)]):
            cas(d, f"v0:t{i}", hold, 0, 1, 0, site=f"s.{hold:#x}")
        for i, (_hold, want) in enumerate([(0xA, 0xB), (0xB, 0xC),
                                           (0xC, 0xA)]):
            d.on_futex_wait(0, f"v0:t{i}", want)
        (record,) = d.report.records
        assert len(record.threads) == 3

    def test_reset_variant_forgets_state(self):
        d = DeadlockDetector()
        cas(d, "v0:t1", 0xA, 0, 1, 0, variant=0)
        cas(d, "v1:t1", 0xA, 0, 1, 0, variant=1)
        d.on_futex_wait(1, "v1:t2", 0xA)
        d.reset_variant(1)
        assert (1, 0xA) not in d._holders
        assert "v1:t2" not in d._waiting
        assert (0, 0xA) in d._holders  # other variants untouched

    def test_clock_stamped_on_record(self):
        d = DeadlockDetector()
        d.bind_clock(lambda: 12345.0)
        self.wedge_two(d)
        assert d.report.records[0].at_cycles == 12345.0


class TestRecordShape:
    def test_cycle_name_and_dict(self):
        record = DeadlockRecord(
            variant=0, at_cycles=10.0,
            threads=(DeadlockThread("a", (1,), ("s1",), 2, "s2"),
                     DeadlockThread("b", (2,), ("s2",), 1, "s1")))
        assert record.cycle_name() == "a -> b -> a"
        payload = record.to_dict()
        assert payload["cycle"] == "a -> b -> a"
        assert payload["threads"][0]["wants"] == 2

    def test_summary_forms(self):
        d = DeadlockDetector()
        assert "no deadlock" in d.report.summary()
        self_wedge = TestWaitForGraph()
        self_wedge.wedge_two(d)
        assert "1 deadlock cycle(s)" in d.report.summary()


# -- MVEE integration --------------------------------------------------------


class TestPhilosophersIntegration:
    def run_wedged(self, obs=None):
        detector = DeadlockDetector()
        outcome = run_mvee(DiningPhilosophers(3), variants=2, seed=11,
                           costs=FAST, max_cycles=50_000_000.0,
                           deadlocks=detector, obs=obs)
        return detector, outcome

    def test_deadlock_verdict_with_named_cycle(self):
        detector, outcome = self.run_wedged()
        assert outcome.verdict == "deadlock"
        assert outcome.deadlocks is detector.report
        (record,) = [detector.report.records[0]]
        assert set(record.cycle_name().split(" -> ")) == {
            "phil0", "phil1", "phil2"}
        assert "libpthread.mutex.lock.cmpxchg" in record.sites()

    def test_detected_in_bounded_time(self):
        # Cycle formation, not watchdog expiry: the wedge of three
        # philosophers must be diagnosed within the first slice of the
        # budget, not after burning it.
        detector, outcome = self.run_wedged()
        assert outcome.cycles < 1_000_000.0
        assert detector.report.records[0].at_cycles <= outcome.cycles

    def test_obs_mirror_and_bundle(self):
        hub = ObsHub()
        detector, outcome = self.run_wedged(obs=hub)
        assert len(hub.deadlock_log) == len(detector.report.records)
        assert hub.metrics.counter("deadlocks.detected").value >= 1
        assert outcome.obs_bundle is not None
        assert outcome.obs_bundle.deadlocks
        assert outcome.obs_bundle.deadlocks[0]["cycle"] == \
            detector.report.records[0].cycle_name()

    def test_trylock_variant_stays_clean_with_refusals(self):
        detector = DeadlockDetector()
        outcome = run_mvee(DiningPhilosophers(3, trylock=True), variants=2,
                           seed=11, costs=FAST, max_cycles=50_000_000.0,
                           deadlocks=detector)
        assert outcome.verdict == "clean"
        assert not detector.report.deadlocked
        assert detector.report.guard_refusals >= 1
        assert "libpthread.mutex.trylock.cmpxchg" in \
            detector.report.guard_sites
        assert detector.report.acquires_seen == detector.report.releases_seen

    def test_deadlocks_true_builds_default_detector(self):
        outcome = run_mvee(DiningPhilosophers(3), variants=2, seed=11,
                           costs=FAST, max_cycles=50_000_000.0,
                           deadlocks=True)
        assert outcome.verdict == "deadlock"
        assert outcome.deadlocks is not None
        assert outcome.deadlocks.deadlocked

    def test_detached_run_has_no_deadlock_report(self):
        outcome = run_mvee(DiningPhilosophers(3, trylock=True), variants=2,
                           seed=11, costs=FAST, max_cycles=50_000_000.0)
        assert outcome.verdict == "clean"
        assert outcome.deadlocks is None


class TestPhilosophersProgram:
    def test_rejects_degenerate_table(self):
        with pytest.raises(ValueError):
            DiningPhilosophers(1)

    def test_names_distinguish_variants(self):
        assert DiningPhilosophers(3).name == "dining_philosophers"
        assert DiningPhilosophers(3, trylock=True).name == \
            "dining_philosophers_trylock"
