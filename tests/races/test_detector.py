"""Happens-before race detector: hooks, HB edges, classification."""

import pytest

from repro.core.mvee import run_mvee
from repro.perf.costs import CostModel
from repro.races import RaceDetector, granule_of
from tests.guestlib import MutexCounterProgram, VolatileFlagProgram

FAST = CostModel(monitor_syscall_overhead=2_000.0,
                 preempt_quantum=20_000.0)


def run_with_detector(program, detector, instrument=None, seed=1,
                      variants=2, **kwargs):
    return run_mvee(program, variants=variants, agent="wall_of_clocks",
                    seed=seed, costs=FAST, races=detector,
                    **({"instrument": instrument}
                       if instrument is not None else {}),
                    **kwargs)


class TestGranule:
    def test_eight_byte_aliasing(self):
        base = 0x1000
        assert len({granule_of(base + off) for off in range(8)}) == 1

    def test_neighbours_distinct(self):
        assert granule_of(0x1000) != granule_of(0x1008)


class TestVolatileFlagRace:
    """The Listing-2 workload: bare flag accesses must race."""

    def run_bare(self, seed=1):
        detector = RaceDetector()
        outcome = run_with_detector(
            VolatileFlagProgram(), detector,
            instrument=lambda site: not site.startswith("volatile."))
        return detector.report, outcome

    def test_flag_sites_race(self):
        report, outcome = self.run_bare()
        assert report.races, "bare volatile flag must race"
        assert report.race_sites() <= {"volatile.flag.raise.store",
                                       "volatile.flag.poll.load"}
        kinds = {race.kind for race in report.races}
        assert kinds <= {"write-read", "read-write", "write-write"}

    def test_run_still_completes(self):
        _, outcome = self.run_bare()
        assert outcome.verdict in ("clean", "divergence")

    def test_occurrences_accumulate(self):
        """The spin loop re-polls: dedup keeps races distinct while the
        occurrence counter keeps counting."""
        report, _ = self.run_bare()
        assert report.total_occurrences >= len(report.races)

    def test_fully_instrumented_no_races(self):
        detector = RaceDetector()
        run_with_detector(VolatileFlagProgram(), detector)
        assert not detector.report.races
        assert detector.report.sync_ops_seen > 0
        assert detector.report.plain_accesses_checked == 0


class TestInstrumentedLockstep:
    def test_mutex_counter_no_false_positives(self):
        detector = RaceDetector()
        outcome = run_with_detector(
            MutexCounterProgram(workers=3, iters=20), detector)
        assert outcome.verdict == "clean"
        assert not detector.report.races
        assert detector.report.sync_ops_seen > 0
        assert detector.report.hb_edges > 0

    def test_forced_plain_classification_races(self):
        """Treating every site as un-identified turns the mutex's own
        accesses into racing plain accesses — the detector's positive
        control."""
        detector = RaceDetector(sync_sites=lambda site: False)
        run_with_detector(MutexCounterProgram(workers=3, iters=20),
                          detector)
        assert detector.report.races
        assert detector.report.sync_ops_seen == 0

    def test_zero_cost_when_detached(self):
        baseline = run_with_detector(
            MutexCounterProgram(workers=3, iters=20), None)
        detector = RaceDetector()
        detected = run_with_detector(
            MutexCounterProgram(workers=3, iters=20), detector)
        assert detected.cycles == baseline.cycles
        assert detected.stdout == baseline.stdout


class TestReportMechanics:
    def _racy_report(self, max_races=1024):
        detector = RaceDetector(sync_sites=lambda site: False,
                                max_races=max_races)
        run_with_detector(MutexCounterProgram(workers=3, iters=20),
                          detector)
        return detector.report

    def test_max_races_cap_suppresses(self):
        full = self._racy_report()
        assert len(full.races) > 1
        capped = self._racy_report(max_races=1)
        assert len(capped.races) == 1
        assert capped.suppressed > 0

    def test_dedup_key_is_site_pair(self):
        report = self._racy_report()
        keys = {(r.variant, r.kind, r.prior.site, r.current.site)
                for r in report.races}
        assert len(keys) == len(report.races)
        assert set(report.occurrences) == keys

    def test_records_carry_thread_and_cycles(self):
        report = self._racy_report()
        race = report.races[0]
        for access in (race.prior, race.current):
            assert access.thread
            assert access.at_cycles >= 0.0
            assert access.granule == granule_of(access.granule << 3)

    def test_summary_and_str_render(self):
        report = self._racy_report()
        assert "race" in report.summary()
        text = str(report.races[0])
        assert "@" in text and report.races[0].kind in text

    def test_outcome_carries_report(self):
        detector = RaceDetector()
        outcome = run_with_detector(
            MutexCounterProgram(workers=2, iters=10), detector)
        assert outcome.races is detector.report

    def test_outcome_none_without_detector(self):
        outcome = run_with_detector(
            MutexCounterProgram(workers=2, iters=10), None)
        assert outcome.races is None


class TestHBEdgesDirect:
    """Unit-level checks against the detector's edge builders."""

    class FakeThread:
        def __init__(self, global_id):
            self.global_id = global_id
            self.logical_id = global_id.split(":", 1)[1]

    def test_spawn_orders_child_after_parent(self):
        detector = RaceDetector()
        parent = self.FakeThread("v0:t0")
        child = self.FakeThread("v0:w1")
        detector._vc("v0:t0").tick("v0:t0")
        snapshot = detector._vc("v0:t0").copy()
        detector.on_spawn(parent, child)
        assert detector._vc("v0:w1").dominates(snapshot)
        # parent advanced past the fork point
        assert detector._vc("v0:t0").get("v0:t0") \
            == snapshot.get("v0:t0") + 1

    def test_join_absorbs_target_history(self):
        detector = RaceDetector()
        joiner = self.FakeThread("v0:t0")
        target = self.FakeThread("v0:w1")
        detector._vc("v0:w1").tick("v0:w1")
        final = detector._vc("v0:w1").copy()
        detector.on_join(joiner, target)
        assert detector._vc("v0:t0").dominates(final)

    def test_futex_wake_orders_wakees(self):
        detector = RaceDetector()
        detector._vc("v0:t0").tick("v0:t0")
        published = detector._vc("v0:t0").copy()
        detector.on_futex_wake("v0:t0", ["v0:w1", "v0:w2"])
        for wakee in ("v0:w1", "v0:w2"):
            assert detector._vc(wakee).dominates(published)

    def test_wake_without_wakees_is_noop(self):
        detector = RaceDetector()
        detector.on_futex_wake("v0:t0", [])
        assert detector.report.hb_edges == 0

    def test_reset_variant_drops_only_that_variant(self):
        detector = RaceDetector()
        detector._vc("v0:t0")
        detector._vc("v1:t0")
        detector._sync_vc[(1, 5)] = detector._vc("v1:t0").copy()
        detector.reset_variant(1)
        assert "v1:t0" not in detector._threads
        assert "v0:t0" in detector._threads
        assert (1, 5) not in detector._sync_vc
