"""Race detector × fault injection: state survives quarantine/restart.

The detector keeps per-thread vector clocks keyed by variant.  When the
resilience layer condemns and restarts a variant, ``reset_variant``
must drop the dead incarnation's clocks and per-variant history —
otherwise the reincarnated threads appear un-ordered against their
predecessors' accesses and the detector reports ghost races.
"""

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.faults import FaultPlan, FaultSpec
from repro.races import RaceDetector
from tests.guestlib import MutexCounterProgram

CRASH_V1 = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))
CORRUPT_V1 = FaultPlan((FaultSpec(kind="corrupt_sync", variant=1,
                                  at=6),))


def _run(policy, plan, costs, detector):
    return run_mvee(MutexCounterProgram(workers=3, iters=25),
                    variants=3, seed=7, costs=costs, faults=plan,
                    policy=policy, races=detector)


class TestDetectorSurvivesRecovery:
    def test_no_false_races_across_restart(self, fast_costs):
        """A crash + restart cycles variant 1; the fully instrumented
        run must stay race-free before and after the swap."""
        detector = RaceDetector()
        outcome = _run(MonitorPolicy(degradation="restart"), CRASH_V1,
                       fast_costs, detector)
        assert outcome.verdict == "degraded"
        event, = outcome.quarantines
        assert event.restarted
        assert not detector.report.races, \
            [str(r) for r in detector.report.races]

    def test_no_false_races_across_quarantine(self, fast_costs):
        detector = RaceDetector()
        outcome = _run(MonitorPolicy(degradation="quarantine"),
                       CRASH_V1, fast_costs, detector)
        assert outcome.verdict == "degraded"
        assert not detector.report.races

    def test_corrupt_sync_under_restart(self, fast_costs):
        """The satellite's named scenario: corrupted replay state gets
        the variant condemned; the detector must ride through the
        restart without inventing races."""
        detector = RaceDetector()
        outcome = _run(MonitorPolicy(degradation="restart"), CORRUPT_V1,
                       fast_costs, detector)
        assert outcome.verdict in ("degraded", "clean")
        assert not detector.report.races

    def test_restarted_variant_state_was_reset(self, fast_costs):
        """After the run no thread clock of the condemned incarnation
        may linger un-reset: every v1 clock present must belong to the
        replacement (created after the quarantine event)."""
        detector = RaceDetector()
        outcome = _run(MonitorPolicy(degradation="restart"), CRASH_V1,
                       fast_costs, detector)
        event, = outcome.quarantines
        assert event.variant == 1
        # the replacement re-ran from scratch, so v1 clocks exist again
        assert any(tid.startswith("v1:") for tid in detector._threads)
        # other variants' clocks were never touched
        assert any(tid.startswith("v0:") for tid in detector._threads)

    def test_races_recorded_before_reset_survive(self, fast_costs):
        """reset_variant forgets clocks, not history: races already in
        the report stay there."""
        detector = RaceDetector(sync_sites=lambda site: False)
        _run(MonitorPolicy(degradation="restart"), CRASH_V1,
             fast_costs, detector)
        assert detector.report.races  # positive control still reported

    def test_sync_ops_still_observed_after_restart(self, fast_costs):
        baseline = RaceDetector()
        _run(MonitorPolicy(), None, fast_costs, baseline)
        detector = RaceDetector()
        _run(MonitorPolicy(degradation="restart"), CRASH_V1,
             fast_costs, detector)
        # the restarted variant replays its history, so the degraded
        # run commits at least as many instrumented sync ops
        assert detector.report.sync_ops_seen \
            >= baseline.report.sync_ops_seen
