"""Eraser-style lockset lint over the analysis mini-IR."""

import pytest

from repro.analysis.corpus import (
    guarded_counter_module,
    heap_imprecision_module,
    nginx_module,
    paper_corpus,
    racy_counter_module,
    spinlock_module,
    volatile_flag_module,
)
from repro.races import lint_corpus, lint_module


class TestDemoModules:
    def test_listing1_spinlock_clean(self):
        lint = lint_module(spinlock_module())
        assert lint.clean
        assert lint.lock_objects  # the spinlock itself was recognised

    def test_listing2_volatile_flag_flagged(self):
        lint = lint_module(volatile_flag_module())
        assert not lint.clean
        candidate = lint.candidate_for("flag")
        assert candidate is not None
        assert len(candidate.functions()) == 2
        assert candidate.writes >= 1
        for access in candidate.accesses:
            assert access.lockset == frozenset()

    def test_listing2_clean_with_volatile_as_sync(self):
        lint = lint_module(volatile_flag_module(),
                           treat_volatile_as_sync=True)
        assert lint.clean

    def test_racy_counter_flagged(self):
        lint = lint_module(racy_counter_module())
        assert not lint.clean
        candidate = lint.candidate_for("counter")
        assert candidate is not None
        assert "racy.peek_counter.load" in candidate.sites()
        assert "racy.bump_counter.store" in candidate.sites()

    def test_guarded_counter_clean(self):
        """Same shape as racy_counter but lock-guarded — no candidate."""
        lint = lint_module(guarded_counter_module())
        assert lint.clean
        assert lint.accesses_recorded == 2  # data accesses still seen

    def test_nginx_module_clean(self):
        """nginx's custom primitives guard their data consistently —
        the *static* lint can't see the Listing-2-style coverage gap
        (that's the dynamic detector's job)."""
        assert lint_module(nginx_module()).clean


class TestAnalysisChoice:
    def test_both_analyses_accepted(self):
        for analysis in ("andersen", "steensgaard"):
            lint = lint_module(racy_counter_module(), analysis=analysis)
            assert not lint.clean

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            lint_module(racy_counter_module(), analysis="magic")


class TestCorpus:
    def test_paper_corpus_lints_clean(self):
        """The corpus models well-synchronised libraries; flagging them
        would be a lint false positive."""
        for lint in lint_corpus(paper_corpus()):
            assert lint.clean, lint.summary()

    def test_heap_imprecision_clean_under_both(self):
        for analysis in ("andersen", "steensgaard"):
            assert lint_module(heap_imprecision_module(),
                               analysis=analysis).clean


class TestReportShape:
    def test_summary_mentions_candidates(self):
        lint = lint_module(racy_counter_module())
        assert "1 candidate" in lint.summary()
        assert lint.candidate_sites() == {"racy.peek_counter.load",
                                          "racy.bump_counter.store"}

    def test_source_lines_resolved(self):
        candidate = lint_module(racy_counter_module()) \
            .candidate_for("counter")
        lines = candidate.source_lines()
        assert lines
        for filename, lineno in lines:
            assert isinstance(filename, str) and isinstance(lineno, int)

    def test_clean_summary(self):
        assert "clean" in lint_module(guarded_counter_module()).summary()
