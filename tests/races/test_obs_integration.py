"""Races × observability: race_log, metrics, traces, bundles."""

from repro.core.mvee import run_mvee
from repro.obs import ObsHub
from repro.obs.forensics import DivergenceBundle, summarize_bundle
from repro.perf.costs import CostModel
from repro.races import RaceDetector
from tests.guestlib import VolatileFlagProgram

FAST = CostModel(monitor_syscall_overhead=2_000.0,
                 preempt_quantum=20_000.0)


def _bare_flag_run(hub):
    detector = RaceDetector()
    outcome = run_mvee(
        VolatileFlagProgram(), variants=2, agent="wall_of_clocks",
        seed=1, costs=FAST, obs=hub,
        instrument=lambda site: not site.startswith("volatile."),
        races=detector)
    return detector, outcome


class TestHubIntegration:
    def test_race_log_mirrors_report(self):
        hub = ObsHub()
        detector, _ = _bare_flag_run(hub)
        assert len(hub.race_log) == len(detector.report.races)
        for entry in hub.race_log:
            assert entry["kind"] in ("write-read", "read-write",
                                     "write-write")
            assert "at_cycles" in entry

    def test_race_counters(self):
        hub = ObsHub()
        detector, _ = _bare_flag_run(hub)
        detected = hub.metrics.counter("races.detected").value
        assert detected == len(detector.report.races)
        by_kind = sum(
            hub.metrics.counter(f"races.kind.{kind}").value
            for kind in {r.kind for r in detector.report.races})
        assert by_kind == detected

    def test_trace_carries_race_instants(self):
        hub = ObsHub()
        detector, _ = _bare_flag_run(hub)
        race_events = [e for e in hub.tracer.events
                       if getattr(e, "cat", None) == "race"]
        assert len(race_events) == len(detector.report.races)

    def test_no_hub_no_crash(self):
        detector, outcome = _bare_flag_run(None)
        assert detector.report.races  # detection works without obs


class TestBundleIntegration:
    def _diverged_bundle(self):
        from repro.experiments.runner import run_nginx_condition

        hub = ObsHub()
        detector = RaceDetector()
        outcome = run_nginx_condition(False, detector=detector, obs=hub)
        assert outcome.verdict == "divergence"
        assert outcome.obs_bundle is not None
        return detector, outcome.obs_bundle

    def test_bundle_embeds_race_log(self):
        detector, bundle = self._diverged_bundle()
        assert len(bundle.races) == len(detector.report.races)
        sites = {entry["current"]["site"] for entry in bundle.races}
        assert sites <= detector.report.race_sites()

    def test_bundle_round_trips_races(self, tmp_path):
        _, bundle = self._diverged_bundle()
        path = tmp_path / "bundle.json"
        bundle.save(path)
        loaded = DivergenceBundle.load(path)
        assert loaded.races == bundle.races

    def test_summarize_mentions_races(self):
        _, bundle = self._diverged_bundle()
        text = summarize_bundle(bundle)
        assert "races detected" in text
        assert "nginx." in text
