"""Tests for the discrete-event machine: threads, time, blocking, wakes."""

import pytest

from repro.errors import DeadlockError, GuestFault
from repro.guest.program import GuestProgram
from repro.guest.sync import Mutex
from repro.run import run_native
from repro.sched.scheduler import RoundRobinPolicy
from tests.guestlib import (
    BarrierPhasesProgram,
    CounterProgram,
    MutexCounterProgram,
    PipelineProgram,
    ProducerConsumerProgram,
)


class TestBasicExecution:
    def test_single_thread_compute_advances_time(self):
        class P(GuestProgram):
            def main(self, ctx):
                yield from ctx.compute(10_000)
                return "done"

        result = run_native(P(), seed=1)
        assert result.cycles >= 10_000
        assert result.vm.threads["main"].result == "done"

    def test_stdout_capture(self):
        class P(GuestProgram):
            def main(self, ctx):
                yield from ctx.printf("hello\n")
                yield from ctx.printf("world\n")

        result = run_native(P(), seed=1)
        assert result.stdout == "hello\nworld\n"

    def test_determinism_same_seed(self):
        program = CounterProgram(workers=3, iters=40)
        first = run_native(program, seed=5)
        second = run_native(program, seed=5)
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout

    def test_different_seeds_differ(self):
        program = CounterProgram(workers=4, iters=60)
        outputs = {run_native(program, seed=s).stdout for s in range(6)}
        assert len(outputs) > 1, (
            "scheduling must be nondeterministic across seeds")

    def test_parallel_speedup_with_cores(self):
        program = CounterProgram(workers=4, iters=80, chatty=False)
        wide = run_native(program, seed=2, cores=16)
        narrow = run_native(program, seed=2, cores=1)
        assert narrow.cycles > wide.cycles * 2

    def test_thread_results_via_join(self):
        class P(GuestProgram):
            def main(self, ctx):
                tid = yield from ctx.spawn(self.child, 21)
                value = yield from ctx.join(tid)
                return value

            def child(self, ctx, n):
                yield from ctx.compute(100)
                return n * 2

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == 42

    def test_logical_thread_ids_hierarchical(self):
        class P(GuestProgram):
            def main(self, ctx):
                tid = yield from ctx.spawn(self.child)
                yield from ctx.join(tid)

            def child(self, ctx):
                tid = yield from ctx.spawn(self.grandchild)
                yield from ctx.join(tid)

            def grandchild(self, ctx):
                yield from ctx.compute(10)

        result = run_native(P(), seed=0)
        assert set(result.vm.threads) == {"main", "main/1", "main/1/1"}


class TestBlockingAndWakes:
    def test_mutex_counter_is_exact(self):
        result = run_native(MutexCounterProgram(workers=4, iters=50),
                            seed=3)
        assert "total=200" in result.stdout

    def test_producer_consumer_completes(self):
        result = run_native(ProducerConsumerProgram(), seed=4)
        assert "consumed=80" in result.stdout

    def test_barrier_phases(self):
        program = BarrierPhasesProgram(workers=4, phases=5)
        result = run_native(program, seed=6)
        # after all phases every thread contributed (1+2+3+4) per phase
        assert "accum=50" in result.stdout

    def test_pipeline_over_pipes(self):
        result = run_native(PipelineProgram(items=20), seed=7)
        assert "pipeline done=20" in result.stdout

    def test_nanosleep_advances_simulated_time(self):
        class P(GuestProgram):
            def main(self, ctx):
                yield from ctx.syscall("nanosleep", 0.001)

        result = run_native(P(), seed=0)
        assert result.cycles >= 1_000_000

    def test_deadlock_detected(self):
        class P(GuestProgram):
            static_vars = ("m1", "m2")

            def main(self, ctx):
                m1, m2 = Mutex(ctx.static_addr("m1")), Mutex(
                    ctx.static_addr("m2"))
                tid = yield from ctx.spawn(self.other, m1, m2)
                yield from m1.acquire(ctx)
                yield from ctx.compute(50_000)
                yield from m2.acquire(ctx)
                yield from ctx.join(tid)

            def other(self, ctx, m1, m2):
                yield from m2.acquire(ctx)
                yield from ctx.compute(50_000)
                yield from m1.acquire(ctx)

        with pytest.raises(DeadlockError) as excinfo:
            run_native(P(), seed=0)
        assert excinfo.value.blocked

    def test_budget_exhaustion_raises(self):
        class Spin(GuestProgram):
            def main(self, ctx):
                while True:
                    yield from ctx.compute(1_000)

        with pytest.raises(DeadlockError):
            run_native(Spin(), seed=0, max_cycles=100_000)


class TestFaults:
    def test_native_fault_propagates(self):
        class Bad(GuestProgram):
            def main(self, ctx):
                ctx.mem_store(0xDEAD, 1)
                yield from ctx.compute(1)

        with pytest.raises(GuestFault):
            run_native(Bad(), seed=0)

    def test_fault_records_variant_and_thread(self):
        class Bad(GuestProgram):
            def main(self, ctx):
                tid = yield from ctx.spawn(self.child)
                yield from ctx.join(tid)

            def child(self, ctx):
                yield from ctx.compute(1)
                ctx.mem_load(0xDEAD)

        with pytest.raises(GuestFault) as excinfo:
            run_native(Bad(), seed=0)
        assert excinfo.value.thread == "main/1"


class TestSchedulingPolicies:
    def test_round_robin_is_seed_independent(self):
        program = CounterProgram(workers=3, iters=30, chatty=False)
        a = run_native(program, seed=1, policy=RoundRobinPolicy())
        b = run_native(program, seed=2, policy=RoundRobinPolicy())
        # round-robin still has duration jitter, but order of grants is
        # arrival-based; totals must be identical
        assert "total=90" in a.stdout and "total=90" in b.stdout

    def test_stats_accounting(self):
        result = run_native(MutexCounterProgram(workers=3, iters=30),
                            seed=9)
        per_variant = result.report.per_variant[0]
        assert per_variant["syscalls"] > 0
        assert per_variant["sync_ops"] > 0
        assert per_variant["busy_cycles"] > 0
