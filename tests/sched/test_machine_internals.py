"""Deeper tests of machine mechanics: preemption, timers, exits, stats."""

import pytest

from repro.errors import DeadlockError
from repro.guest.program import GuestProgram
from repro.run import run_native
from repro.sched.machine import Machine
from repro.sched.thread import ThreadState


class TestPreemption:
    def test_quantum_forces_sharing_on_one_core(self):
        """On a single core, two compute-bound threads must interleave
        (quantum preemption), so both finish around the same time."""

        class TwoHogs(GuestProgram):
            def main(self, ctx):
                first = yield from ctx.spawn(self.hog)
                second = yield from ctx.spawn(self.hog)
                yield from ctx.join_all([first, second])

            def hog(self, ctx):
                for _ in range(100):
                    yield from ctx.compute(10_000)
                return 0

        result = run_native(TwoHogs(), seed=1, cores=1)
        threads = result.vm.threads
        # Total busy ≈ 2 x 1M cycles; on one core the wall time covers
        # both, so each thread must have been preempted many times.
        assert result.cycles >= 2_000_000
        for tid in ("main/1", "main/2"):
            assert threads[tid].stats.busy_cycles >= 1_000_000

    def test_sched_yield_rotates_threads(self):
        class Poller(GuestProgram):
            def main(self, ctx):
                first = yield from ctx.spawn(self.spin, 1)
                second = yield from ctx.spawn(self.spin, 2)
                yield from ctx.join_all([first, second])

            def spin(self, ctx, idx):
                for _ in range(20):
                    yield from ctx.compute(100)
                    yield from ctx.sched_yield()
                return idx

        result = run_native(Poller(), seed=1, cores=1)
        assert result.vm.threads["main/1"].result == 1
        assert result.vm.threads["main/2"].result == 2


class TestTimersAndSleep:
    def test_parallel_sleeps_overlap(self):
        class Sleepers(GuestProgram):
            def main(self, ctx):
                tids = yield from ctx.spawn_all(
                    self.sleeper, [() for _ in range(4)])
                yield from ctx.join_all(tids)

            def sleeper(self, ctx):
                yield from ctx.syscall("nanosleep", 0.002)

        result = run_native(Sleepers(), seed=1)
        # Sleeps run concurrently: total ~2 ms, not 8 ms.
        assert 2_000_000 <= result.cycles < 4_500_000


class TestExitGroup:
    def test_exit_group_stops_all_threads(self):
        class Exiting(GuestProgram):
            def main(self, ctx):
                tid = yield from ctx.spawn(self.forever)
                yield from ctx.compute(5_000)
                yield from ctx.syscall("exit_group", 7)
                yield from ctx.printf("unreachable\n")

            def forever(self, ctx):
                while True:
                    yield from ctx.compute(1_000)

        result = run_native(Exiting(), seed=1)
        assert "unreachable" not in result.stdout
        assert all(t.state is ThreadState.DONE
                   for t in result.vm.threads.values())


class TestStatsAccounting:
    def test_stall_and_queue_cycles_tracked(self):
        from tests.guestlib import MutexCounterProgram
        result = run_native(MutexCounterProgram(workers=4, iters=40),
                            seed=2, cores=2)  # oversubscribed
        stats = result.report.per_variant[0]
        assert stats["stall_cycles"] > 0     # futex waits
        assert stats["queue_cycles"] > 0     # waiting for a core

    def test_logical_instructions_deterministic_across_seeds(self):
        """The DMT-feeding counter ignores jitter: same per-thread values
        for any scheduler seed."""
        from tests.guestlib import ScheduleWitnessProgram

        def per_thread(seed):
            result = run_native(
                ScheduleWitnessProgram(workers=2, iters=10), seed=seed)
            return {tid: t.stats.logical_instructions
                    for tid, t in result.vm.threads.items()
                    if tid != "main"}

        # Worker loops are identical; their totals must match exactly
        # (spin retries may differ, so compare the floor across seeds).
        first, second = per_thread(1), per_thread(2)
        assert set(first) == set(second)


class TestMachineEdgeCases:
    def test_empty_machine_finishes(self):
        machine = Machine(cores=2, seed=0)
        report = machine.run()
        assert report.cycles == 0.0

    def test_external_events_drive_time(self):
        machine = Machine(cores=2, seed=0)
        fired = []
        machine.call_at(5_000.0, lambda m: fired.append(m.now))
        machine.run()
        assert fired == [5_000.0]

    def test_wait_key_external_fires_on_wake(self):
        machine = Machine(cores=2, seed=0)
        fired = []
        machine.wait_key_external(("k",), lambda m: fired.append("woken"))
        machine.call_at(100.0, lambda m: m.wake_key(("k",)))
        machine.run()
        assert fired == ["woken"]

    def test_budget_guard(self):
        class Forever(GuestProgram):
            def main(self, ctx):
                while True:
                    yield from ctx.compute(1_000)

        with pytest.raises(DeadlockError):
            run_native(Forever(), seed=0, max_cycles=50_000)
