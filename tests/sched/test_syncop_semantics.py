"""Atomic-op semantics as executed by the machine (commit-time effects)."""

import pytest

from repro.guest.program import GuestProgram
from repro.run import run_native
from repro.sched.events import InstructionClass, SyncOp
from repro.sched.machine import Machine
from repro.sched.vm import VariantVM
from repro.kernel.kernel import VirtualKernel
from repro.kernel.fs import VirtualDisk


def apply_op(op, addr_value=0, args=()):
    disk = VirtualDisk()
    vm = VariantVM(index=0, kernel=VirtualKernel(disk))
    addr = vm.kernel.addr_space.alloc_static()
    vm.kernel.addr_space.store(addr, addr_value)
    event = SyncOp(op, addr, args)
    result = Machine._apply_syncop(vm, event)
    return result, vm.kernel.addr_space.load(addr)


class TestAtomicSemantics:
    def test_cas_success(self):
        result, value = apply_op("cas", 5, (5, 9))
        assert (result, value) == (5, 9)

    def test_cas_failure_leaves_memory(self):
        result, value = apply_op("cas", 5, (4, 9))
        assert (result, value) == (5, 5)

    def test_xchg(self):
        result, value = apply_op("xchg", 3, (8,))
        assert (result, value) == (3, 8)

    def test_fetch_add_returns_old(self):
        result, value = apply_op("fetch_add", 10, (-3,))
        assert (result, value) == (10, 7)

    def test_load(self):
        result, value = apply_op("load", 42)
        assert (result, value) == (42, 42)

    def test_store_returns_none(self):
        result, value = apply_op("store", 1, (77,))
        assert result is None and value == 77

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError):
            apply_op("swizzle", 0, ())


class TestGuestLevelAtomics:
    def test_ops_through_context(self):
        class P(GuestProgram):
            static_vars = ("word",)

            def main(self, ctx):
                addr = ctx.static_addr("word")
                results = []
                results.append((yield from ctx.fetch_add(addr, 5)))
                results.append((yield from ctx.xchg(addr, 100)))
                results.append((yield from ctx.cas(addr, 100, 7)))
                results.append((yield from ctx.atomic_load(addr)))
                yield from ctx.atomic_store(addr, 0)
                results.append(ctx.mem_load(addr))
                return results

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == [0, 5, 100, 7, 0]

    def test_instruction_classes_tagged(self):
        class P(GuestProgram):
            static_vars = ("word",)

            def main(self, ctx):
                addr = ctx.static_addr("word")
                yield from ctx.cas(addr, 0, 1, site="s1")
                yield from ctx.xchg(addr, 2, site="s2")
                yield from ctx.atomic_load(addr, site="s3")

        from repro.sched.vm import VariantVM
        result = run_native(P(), seed=0, record_trace=False)
        # classes are enforced by the helper constructors:
        from repro.sched.events import SyncOp
        cas_event = SyncOp("cas", 0, (0, 1))
        assert cas_event.iclass is InstructionClass.LOCK_PREFIXED

    def test_atomicity_under_contention(self):
        """The canonical torn-update test: N threads x M fetch_adds must
        sum exactly (no lock, pure atomics)."""

        class P(GuestProgram):
            static_vars = ("word",)

            def main(self, ctx):
                tids = yield from ctx.spawn_all(
                    self.worker, [() for _ in range(6)])
                yield from ctx.join_all(tids)
                return ctx.mem_load(ctx.static_addr("word"))

            def worker(self, ctx):
                addr = ctx.static_addr("word")
                for _ in range(50):
                    yield from ctx.compute(80)
                    yield from ctx.fetch_add(addr, 1, site="t.xadd")

        for seed in range(3):
            result = run_native(P(), seed=seed)
            assert result.vm.threads["main"].result == 300
