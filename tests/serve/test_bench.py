"""Serve load-bench tests: quota engagement, digest determinism, schema."""

from __future__ import annotations

import json

import pytest

from repro.experiments import serve_load
from repro.serve.bench import (
    render_serve_bench,
    run_serve_bench,
    serve_trajectory_entry,
)

SMALL = dict(sessions=8, concurrency=6, max_sessions=3,
             workload="fft", variants=2, base_seed=3,
             verify_sample=1, out_path=None)


@pytest.fixture(scope="module")
def report():
    return run_serve_bench(**SMALL)


class TestLoadBench:
    def test_all_sessions_complete_under_quota_pressure(self, report):
        totals = report["totals"]
        assert totals["completed"] == SMALL["sessions"]
        assert totals["failures"] == []
        assert totals["peak_active"] <= SMALL["max_sessions"]
        # concurrency > max_sessions: admission control must engage.
        assert totals["rejected"] > 0

    def test_sampled_sessions_match_single_shot(self, report):
        assert report["verified_single_shot"] is True

    def test_digest_is_deterministic_across_runs_and_modes(self, report):
        again = run_serve_bench(**SMALL)
        stepped = run_serve_bench(**dict(SMALL, mode="step",
                                         step_events=100))
        assert report["digest"].startswith("sha256:")
        assert again["digest"] == report["digest"]
        assert stepped["digest"] == report["digest"]

    def test_artifact_schema(self, report, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        written = run_serve_bench(**dict(SMALL, sessions=2,
                                         concurrency=2, verify_sample=0,
                                         out_path=str(out)))
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(written))
        assert on_disk["kind"] == "repro-serve-bench"
        assert on_disk["format_version"] == 2
        assert set(on_disk) >= {"kind", "format_version",
                                "generated_unix", "host", "config",
                                "totals", "wall_s", "throughput_sps",
                                "latency_ms", "digest", "trajectory"}
        assert set(on_disk["latency_ms"]) == {"mean", "p50", "p95",
                                              "p99", "max"}

    def test_render_and_trajectory_entry(self, report):
        text = render_serve_bench(report)
        assert "quota 3 active" in text
        assert "MATCH single-shot" in text
        entry = serve_trajectory_entry(report)
        assert entry["digest"] == report["digest"]
        assert entry["sessions"] == SMALL["sessions"]

    def test_trajectory_is_carried_forward(self, tmp_path):
        history = [{"digest": "sha256:old", "sessions": 1}]
        report = run_serve_bench(**dict(SMALL, sessions=2, concurrency=2,
                                        verify_sample=0,
                                        trajectory=history))
        assert report["trajectory"] == history

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_serve_bench(**dict(SMALL, mode="warp"))


class TestServeLoadScenario:
    def test_seed_derivation_is_per_cell(self):
        specs = serve_load.build_load(4, workload="fft", base_seed=1)
        seeds = [spec["seed"] for spec in specs]
        assert len(set(seeds)) == 4
        # Seeds depend only on (sweep, index, base) -- stable.
        assert serve_load.build_load(4, workload="fft",
                                     base_seed=1)[2] == specs[2]

    def test_load_digest_is_order_independent(self):
        outcomes = [{"index": 1, "seed": 5, "verdict": "clean",
                     "cycles": 10.0, "obs_digest": "sha256:b"},
                    {"index": 0, "seed": 4, "verdict": "clean",
                     "cycles": 11.0, "obs_digest": "sha256:a"}]
        assert (serve_load.load_digest(outcomes)
                == serve_load.load_digest(list(reversed(outcomes))))
