"""End-to-end daemon tests over real sockets.

Each test starts an in-process daemon on an ephemeral port and drives
it through :class:`repro.serve.client.ServeClient` — the same code path
CI smoke and the load bench use.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    BadRequest,
    QuotaExceeded,
    SessionConflict,
    SessionNotFound,
)
from repro.serve.client import ServeClient, wait_for_daemon
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.session import run_session_cell

NGINX = {"workload": "nginx", "seed": 7}
FAULTED = {"workload": "dedup", "scale": 0.05, "seed": 5, "variants": 3,
           "faults": "crash@v1:3", "policy": "quarantine"}


@pytest.fixture
def daemon():
    instance = ServeDaemon(ServeConfig(port=0))
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(daemon):
    with ServeClient(*daemon.address) as handle:
        yield handle


class TestDaemonOps:
    def test_ping_reports_protocol_version(self, client):
        response = client.ping()
        assert response["version"] == 1
        assert response["pid"] > 0

    def test_workloads_mirrors_catalog(self, client):
        names = {entry["name"] for entry in client.workloads()}
        assert {"nginx", "fft", "dedup"} <= names

    def test_status_counts_sessions(self, client):
        client.create(dict(NGINX))
        status = client.status()
        assert status["sessions"]["created"] == 1
        assert status["active"] == 1
        assert status["executor"]["jobs"] == 0

    def test_unknown_op_is_bad_request(self, client):
        with pytest.raises(BadRequest, match="unknown op"):
            client.request("frobnicate")

    def test_malformed_id_is_bad_request(self, client):
        with pytest.raises(BadRequest):
            client.request("step", id=17)

    def test_missing_session_is_not_found(self, client):
        with pytest.raises(SessionNotFound):
            client.poll("s-404")

    def test_internal_errors_never_leak_tracebacks(self, daemon, client):
        # Force a non-ServeError inside an op handler.
        daemon._op_status = lambda request: 1 / 0
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="internal error"):
            client.status()
        assert client.ping()["version"] == 1   # connection survived


class TestSessionOverTheWire:
    def test_batch_run_matches_single_shot(self, client):
        oracle = run_session_cell(dict(NGINX), "oracle")
        result = client.run_to_verdict(dict(NGINX))
        assert result["verdict"] == oracle["verdict"] == "clean"
        assert result["obs_digest"] == oracle["obs_digest"]

    def test_stepped_run_matches_batch(self, client):
        batch = client.run_to_verdict(dict(NGINX))
        stepped = client.run_to_verdict(dict(NGINX), step_events=200)
        assert stepped["obs_digest"] == batch["obs_digest"]

    def test_nonblocking_run_then_poll(self, client):
        session_id = client.create(dict(NGINX))
        envelope = client.run(session_id, wait=False)
        assert envelope["state"] == "queued"
        while not envelope["done"]:
            envelope = client.poll(session_id)
        assert envelope["result"]["verdict"] == "clean"

    def test_metrics_expose_obs_snapshot(self, client):
        session_id = client.create(dict(NGINX))
        while not client.step(session_id, max_events=50)["done"]:
            pass
        metrics = client.metrics(session_id)
        assert metrics["state"] == "finished"
        assert metrics["metrics"]       # non-empty snapshot

    def test_run_on_stepped_session_conflicts(self, client):
        session_id = client.create(dict(NGINX))
        client.step(session_id, max_events=5)
        with pytest.raises(SessionConflict):
            client.run(session_id)

    def test_close_frees_quota_slot(self, daemon):
        small = ServeDaemon(ServeConfig(port=0, max_sessions=1))
        small.start()
        try:
            with ServeClient(*small.address) as client:
                first = client.create(dict(NGINX))
                with pytest.raises(QuotaExceeded) as info:
                    client.create(dict(NGINX))
                assert info.value.status == 429
                client.run(first, wait=True)
                client.close_session(first)
                client.create(dict(NGINX))
        finally:
            small.stop()

    def test_concurrent_clients_share_one_daemon(self, daemon):
        digests = []
        lock = threading.Lock()

        def _drive():
            with ServeClient(*daemon.address) as client:
                result = client.run_to_verdict(dict(NGINX))
            with lock:
                digests.append(result["obs_digest"])

        threads = [threading.Thread(target=_drive) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(digests)) == 1


class TestForkPool:
    def test_batch_sessions_share_the_worker_pool(self):
        daemon = ServeDaemon(ServeConfig(port=0, jobs=2))
        daemon.start()
        try:
            oracle = run_session_cell(dict(NGINX), "oracle")
            with ServeClient(*daemon.address) as client:
                ids = [client.create(dict(NGINX)) for _ in range(4)]
                for session_id in ids:
                    client.run(session_id, wait=False)
                results = {}
                while len(results) < len(ids):
                    for session_id in ids:
                        if session_id in results:
                            continue
                        envelope = client.poll(session_id)
                        if envelope["done"]:
                            results[session_id] = envelope["result"]
                status = client.status()
            assert status["executor"]["jobs"] == 2
            assert status["executor"]["completed"] == 4
            for result in results.values():
                assert result["obs_digest"] == oracle["obs_digest"]
        finally:
            daemon.stop()


class TestRestartRecovery:
    def test_kill_and_restart_recovers_per_policy(self, tmp_path):
        state_dir = str(tmp_path / "state")
        first = ServeDaemon(ServeConfig(port=0, state_dir=state_dir))
        first.start()
        with ServeClient(*first.address) as client:
            quarantined = client.create(dict(FAULTED))
            killed = client.create(dict(NGINX))          # kill-all
            restarted = client.create(
                dict(NGINX, seed=8, policy="restart"))
            for session_id in (quarantined, killed, restarted):
                client.step(session_id, max_events=5)    # now running
        # Simulated crash: stop the server without closing sessions.
        first._server.shutdown()
        first._server.server_close()
        first.executor.shutdown()
        first.registry.shutdown()

        second = ServeDaemon(ServeConfig(port=0, state_dir=state_dir))
        second.start()
        try:
            with ServeClient(*second.address) as client:
                status = client.status()
                assert status["recovered"] == {
                    quarantined: "quarantined", killed: "killed",
                    restarted: "created"}
                # The quarantined session resumes and converges on the
                # uninterrupted single-shot outcome.
                oracle = run_session_cell(dict(FAULTED), "oracle")
                client.resume(quarantined)
                envelope = client.run(quarantined, wait=True)
                assert envelope["result"]["obs_digest"] == \
                    oracle["obs_digest"]
                # The restarted one is immediately runnable.
                assert client.run(restarted, wait=True)["done"]
                # The killed one is terminal: only close works.
                with pytest.raises(SessionConflict):
                    client.step(killed)
                client.close_session(killed)
        finally:
            second.stop()


class TestShutdownOp:
    def test_client_shutdown_stops_the_daemon(self):
        daemon = ServeDaemon(ServeConfig(port=0))
        host, port = daemon.start()
        with wait_for_daemon(host, port) as client:
            assert client.shutdown()["stopping"] is True
        daemon._thread.join(timeout=10.0)
        assert not daemon._thread.is_alive()
        from repro.errors import DaemonUnavailable

        with pytest.raises(DaemonUnavailable):
            ServeClient(host, port).ping()
