"""Wire-protocol unit tests: framing, validation, typed error round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    BadRequest,
    DaemonUnavailable,
    QuotaExceeded,
    SERVE_ERRORS,
    ServeError,
    SessionConflict,
    SessionNotFound,
)
from repro.serve import protocol


class TestDecode:
    def test_valid_request(self):
        message = protocol.decode_request(b'{"op": "ping"}')
        assert message == {"op": "ping"}

    def test_rejects_non_json(self):
        with pytest.raises(BadRequest):
            protocol.decode_request(b"not json at all\n")

    def test_rejects_non_object(self):
        with pytest.raises(BadRequest):
            protocol.decode_request(b'[1, 2, 3]')

    def test_rejects_missing_op(self):
        with pytest.raises(BadRequest):
            protocol.decode_request(b'{"id": "s-1"}')

    def test_rejects_unknown_op(self):
        with pytest.raises(BadRequest, match="unknown op"):
            protocol.decode_request(b'{"op": "frobnicate"}')

    def test_rejects_oversized_line(self):
        line = b'{"op": "ping", "pad": "' \
               + b"x" * protocol.MAX_LINE_BYTES + b'"}'
        with pytest.raises(BadRequest, match="exceeds"):
            protocol.decode_request(line)


class TestEncode:
    def test_one_line_canonical_json(self):
        blob = protocol.encode({"ok": True, "b": 1, "a": 2})
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert json.loads(blob) == {"ok": True, "a": 2, "b": 1}
        # Canonical: sorted keys, no whitespace.
        assert blob == b'{"a":2,"b":1,"ok":true}\n'


class TestErrorRoundTrip:
    @pytest.mark.parametrize("exc_cls,status", [
        (BadRequest, 400), (SessionNotFound, 404),
        (SessionConflict, 409), (QuotaExceeded, 429),
        (DaemonUnavailable, 503),
    ])
    def test_typed_error_survives_the_wire(self, exc_cls, status):
        response = protocol.error_response(exc_cls("nope"), op="create")
        assert response["ok"] is False
        assert response["status"] == status
        assert response["op"] == "create"
        with pytest.raises(exc_cls, match="nope") as info:
            protocol.raise_for(json.loads(protocol.encode(response)))
        assert info.value.status == status

    def test_unknown_error_class_degrades_to_serve_error(self):
        with pytest.raises(ServeError):
            protocol.raise_for({"ok": False, "error": "Mystery",
                                "message": "??", "status": 500})

    def test_ok_response_passes_through(self):
        response = protocol.ok_response("ping", version=1)
        assert protocol.raise_for(response) is response
        assert response["status"] == 200

    def test_registry_covers_every_serve_error(self):
        assert set(SERVE_ERRORS) == {
            "ServeError", "BadRequest", "SessionNotFound",
            "SessionConflict", "QuotaExceeded", "DaemonUnavailable"}
