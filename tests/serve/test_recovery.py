"""Serve crash recovery: resume in-flight work from replay artifacts.

A recording session (``state_dir`` + ``checkpoint_every``) streams its
decision log and checkpoints to disk as it runs.  When the daemon dies
mid-session, the next incarnation finds the journal saying the session
was running, rebuilds it from the newest usable checkpoint plus the
(possibly torn) log prefix, and — because the replayed prefix is
re-observed — converges to exactly the verdict, cycle count, and obs
digest an uninterrupted run produces.
"""

from __future__ import annotations

import os

from repro.serve.registry import SessionRegistry
from repro.serve.session import SessionSpec

SPEC = {"workload": "nginx", "seed": 5, "policy": "restart"}

CHECKPOINT_EVERY = 10_000.0
STEP_EVENTS = 25


def _spec() -> SessionSpec:
    return SessionSpec.from_dict(SPEC).validate()


def _registry(root) -> SessionRegistry:
    return SessionRegistry(state_dir=str(root),
                           checkpoint_every=CHECKPOINT_EVERY)


def _drive(session, limit=200):
    """Step a session to completion; returns its final result dict."""
    for _ in range(limit):
        with session.lock:
            envelope = session.step(STEP_EVENTS)
        if envelope["done"]:
            return envelope["result"]
    raise AssertionError("session did not finish within the budget")


class TestCrashRecovery:
    def test_resumed_session_converges_to_uninterrupted_result(
            self, tmp_path):
        # Uninterrupted reference run in its own state dir.
        ref_registry = _registry(tmp_path / "ref")
        ref_session = ref_registry.create(_spec())
        ref_registry.mark(ref_session, "running")
        reference = _drive(ref_session)
        ref_registry.mark(ref_session, ref_session.state)
        ref_registry.shutdown()

        # The same run, killed mid-flight: journal says "running", the
        # decision log is left with a torn tail past the checkpoint.
        state = tmp_path / "state"
        registry = SessionRegistry(state_dir=str(state),
                                   checkpoint_every=CHECKPOINT_EVERY)
        session = registry.create(_spec())
        registry.mark(session, "running")
        for _ in range(8):
            with session.lock:
                envelope = session.step(STEP_EVENTS)
            assert not envelope["done"]
        session.release_writer()   # crash: no seal, no journal update
        registry.shutdown()
        log_path = session.decision_log_path()
        assert os.path.exists(log_path)
        assert os.path.exists(session.checkpoint_path())
        with open(log_path, "rb+") as handle:
            handle.truncate(os.path.getsize(log_path) - 30)

        recovered = SessionRegistry(state_dir=str(state),
                                    checkpoint_every=CHECKPOINT_EVERY)
        survivor = recovered.get(session.id)
        assert survivor.state == "created"
        assert survivor.resume_from_disk
        result = _drive(survivor)
        recovered.shutdown()

        resumed = result["resumed"]
        assert resumed["replayed_records"] > 0
        assert resumed["discarded_records"] > 0
        assert result["verdict"] == reference["verdict"]
        assert result["cycles"] == reference["cycles"]
        assert result["obs_digest"] == reference["obs_digest"]

    def test_recovery_without_artifacts_restarts_from_scratch(
            self, tmp_path):
        state = tmp_path / "state"
        registry = _registry(state)
        session = registry.create(_spec())
        registry.mark(session, "running")
        registry.shutdown()
        # No step ever ran: there is no decision log or checkpoint on
        # disk, so the recovered session runs from scratch — and still
        # lands on the seeded-deterministic result.
        recovered = _registry(state)
        survivor = recovered.get(session.id)
        assert survivor.state == "created"
        assert survivor.resume_from_disk
        result = _drive(survivor)
        recovered.shutdown()
        assert "resumed" not in result
        assert result["verdict"] == "clean"
