"""Registry tests: admission control, journal persistence, recovery."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import QuotaExceeded, SessionConflict, SessionNotFound
from repro.serve.registry import SessionRegistry, recover_state
from repro.serve.session import SessionSpec

NGINX = {"workload": "nginx", "seed": 3}


def spec(**overrides) -> SessionSpec:
    return SessionSpec.from_dict({**NGINX, **overrides}).validate()


class TestAdmissionControl:
    def test_quota_rejects_with_429(self):
        registry = SessionRegistry(max_sessions=2)
        registry.create(spec())
        registry.create(spec())
        with pytest.raises(QuotaExceeded) as info:
            registry.create(spec())
        assert info.value.status == 429
        assert registry.rejected_total == 1

    def test_closing_frees_a_slot(self):
        registry = SessionRegistry(max_sessions=1)
        session = registry.create(spec())
        registry.close(session.id)
        assert registry.create(spec()).id != session.id

    def test_finished_sessions_do_not_count(self):
        registry = SessionRegistry(max_sessions=1)
        session = registry.create(spec())
        session.state = "finished"
        registry.create(spec())

    def test_concurrent_creates_respect_the_quota(self):
        registry = SessionRegistry(max_sessions=16)
        outcomes = []
        lock = threading.Lock()

        def _create():
            try:
                registry.create(spec())
                result = "ok"
            except QuotaExceeded:
                result = "rejected"
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=_create) for _ in range(40)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("ok") == 16
        assert outcomes.count("rejected") == 24
        assert registry.active_count() == 16
        assert registry.peak_active == 16

    def test_get_unknown_session_is_404(self):
        registry = SessionRegistry()
        with pytest.raises(SessionNotFound):
            registry.get("s-999")


class TestPersistence:
    def _registry(self, tmp_path, **kwargs) -> SessionRegistry:
        return SessionRegistry(state_dir=str(tmp_path / "state"),
                               **kwargs)

    @pytest.mark.parametrize("policy,expected", [
        ("kill-all", "killed"),
        ("quarantine", "quarantined"),
        ("restart", "created"),
    ])
    def test_in_flight_recovery_follows_policy(self, tmp_path, policy,
                                               expected):
        first = self._registry(tmp_path)
        session = first.create(spec(policy=policy))
        first.mark(session, "running")
        first.shutdown()
        second = self._registry(tmp_path)
        recovered = second.get(session.id)
        assert recovered.state == expected
        assert second.recovered == {session.id: expected}
        assert recovered.spec == session.spec

    def test_terminal_states_survive_verbatim(self, tmp_path):
        first = self._registry(tmp_path)
        finished = first.create(spec())
        first.mark(finished, "finished")
        closed = first.create(spec())
        first.mark(closed, "closed")
        first.shutdown()
        second = self._registry(tmp_path)
        assert second.get(finished.id).state == "finished"
        with pytest.raises(SessionNotFound):
            second.get(closed.id)     # closed sessions are compacted out
        assert second.recovered == {}

    def test_ids_never_reused_after_restart(self, tmp_path):
        first = self._registry(tmp_path)
        ids = [first.create(spec()).id for _ in range(3)]
        first.shutdown()
        second = self._registry(tmp_path)
        assert second.create(spec()).id not in ids

    def test_torn_tail_line_is_ignored(self, tmp_path):
        first = self._registry(tmp_path)
        survivor = first.create(spec())
        first.shutdown()
        path = tmp_path / "state" / "registry.jsonl"
        with open(path, "a") as handle:
            handle.write('{"event": "create", "id": "s-99", "spe')
        second = self._registry(tmp_path)
        assert second.get(survivor.id).state == "created"
        with pytest.raises(SessionNotFound):
            second.get("s-99")

    def test_journal_is_compacted_on_startup(self, tmp_path):
        first = self._registry(tmp_path)
        session = first.create(spec())
        for state in ("running", "quarantined", "created", "running"):
            first.mark(session, state)
        first.shutdown()
        second = self._registry(tmp_path)
        second.shutdown()
        lines = [json.loads(line) for line in
                 open(tmp_path / "state" / "registry.jsonl")]
        # One create line per surviving session, no state-change spam.
        assert len(lines) == 1
        assert lines[0]["event"] == "create"
        # "running" at shutdown + kill-all default -> recovered killed.
        assert lines[0]["state"] == "killed"

    def test_resume_requires_quarantined(self, tmp_path):
        registry = SessionRegistry()
        session = registry.create(spec())
        with pytest.raises(SessionConflict):
            registry.resume(session.id)
        session.state = "quarantined"
        resumed = registry.resume(session.id)
        assert resumed.state == "created"
        assert resumed.result is None and resumed.steps == 0


class TestRecoverState:
    def test_mapping(self):
        assert recover_state("running", "kill-all") == "killed"
        assert recover_state("queued", "quarantine") == "quarantined"
        assert recover_state("running", "restart") == "created"
        assert recover_state("finished", "kill-all") == "finished"
        assert recover_state("created", "quarantine") == "created"
