"""Session unit tests: spec validation, stepped-vs-one-shot identity,
quota kills, and the lifecycle x degradation-policy matrix."""

from __future__ import annotations

import pytest

from repro.errors import BadRequest, SessionConflict
from repro.serve.session import (
    Session,
    SessionSpec,
    run_session_cell,
)

SHORT_NGINX_SPEC = {"workload": "nginx", "seed": 5}


class TestSpecValidation:
    def test_defaults_validate(self):
        spec = SessionSpec.from_dict(SHORT_NGINX_SPEC).validate()
        assert spec.agent == "wall_of_clocks"
        assert spec.variants == 2

    def test_round_trips_through_json_dict(self):
        spec = SessionSpec.from_dict(
            {"workload": "fft", "scale": 0.05, "seed": 9,
             "faults": "crash@v1:3", "policy": "quarantine"}).validate()
        again = SessionSpec.from_dict(spec.to_dict()).validate()
        assert again == spec

    @pytest.mark.parametrize("bad", [
        {"workload": "no-such-workload"},
        {"workload": "fft", "agent": "psychic"},
        {"workload": "fft", "policy": "shrug"},
        {"workload": "fft", "variants": 1},
        {"workload": "fft", "variants": 99},
        {"workload": "fft", "scale": 0.0},
        {"workload": "fft", "faults": "nonsense"},
        {"workload": "fft", "params": {"x": 1}},
        {"workload": "nginx", "params": {"bogus_knob": 1}},
        {"workload": "fft", "unknown_field": 1},
        {},
        "not a dict",
    ])
    def test_bad_specs_raise_bad_request(self, bad):
        with pytest.raises(BadRequest):
            if isinstance(bad, dict):
                spec = SessionSpec.from_dict(bad)
                spec.validate()
                # Fields rejected only at MVEE-build time (nginx params)
                # surface when the session materialises.
                from repro.serve.session import build_mvee

                build_mvee(spec)
            else:
                SessionSpec.from_dict(bad)


class TestSteppedIdentity:
    """A budgeted sequence of steps == one uninterrupted run."""

    @pytest.mark.parametrize("spec_dict", [
        SHORT_NGINX_SPEC,
        {"workload": "fft", "scale": 0.05, "seed": 5},
        {"workload": "dedup", "scale": 0.05, "seed": 5,
         "faults": "crash@v1:3", "policy": "quarantine"},
    ])
    def test_stepped_equals_single_shot(self, spec_dict):
        oracle = run_session_cell(dict(spec_dict), "oracle")
        spec = SessionSpec.from_dict(dict(spec_dict)).validate()
        session = Session("s-1", spec)
        envelope = None
        for _ in range(100_000):
            envelope = session.step(5)
            if envelope["done"]:
                break
        assert envelope["done"]
        assert session.steps > 1           # actually exercised resume
        assert envelope["result"]["verdict"] == oracle["verdict"]
        assert envelope["result"]["obs_digest"] == oracle["obs_digest"]
        assert envelope["result"]["cycles"] == oracle["cycles"]

    def test_step_batch_size_does_not_change_outcome(self):
        results = []
        for budget in (50, 700, 10**9):
            spec = SessionSpec.from_dict(dict(SHORT_NGINX_SPEC))
            session = Session("s-x", spec.validate())
            while True:
                envelope = session.step(budget)
                if envelope["done"]:
                    break
            results.append(envelope["result"])
        assert results[0]["obs_digest"] == results[1]["obs_digest"]
        assert results[1]["obs_digest"] == results[2]["obs_digest"]

    def test_fault_events_stream_once_each(self):
        spec = SessionSpec.from_dict(
            {"workload": "dedup", "scale": 0.05, "seed": 5,
             "variants": 3, "faults": "crash@v1:3",
             "policy": "quarantine"}).validate()
        session = Session("s-f", spec)
        events = []
        while True:
            envelope = session.step(300)
            events.extend(envelope["events"])
            if envelope["done"]:
                break
        kinds = [event["type"] for event in events]
        assert "fault" in kinds and "recovery" in kinds
        # Stream seqs are unique and increasing: no re-delivery.
        seqs = [event["stream_seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # The underlying records pass through intact.
        fault = next(e for e in events if e["type"] == "fault")
        assert fault["record"]["kind"] == "crash"


class TestLifecycle:
    def test_cycle_quota_kills_session(self):
        spec = SessionSpec.from_dict(
            {"workload": "fft", "scale": 0.05, "seed": 5}).validate()
        session = Session("s-q", spec, max_cycles=1.0)
        while True:
            envelope = session.step(5)
            if envelope["state"] in ("finished", "killed"):
                break
        assert session.state == "killed"
        assert session.result["verdict"] == "killed"
        assert session.result["reason"] == "cycle quota exceeded"

    def test_step_after_finish_conflicts(self):
        spec = SessionSpec.from_dict(dict(SHORT_NGINX_SPEC)).validate()
        session = Session("s-d", spec)
        while not session.step(10**9)["done"]:
            pass
        with pytest.raises(SessionConflict):
            session.step(100)


class TestDegradationMatrix:
    """create -> drive -> fault-injected divergence -> policy outcome.

    The serve layer must surface exactly the monitor's degradation
    semantics: kill-all turns the injected crash into a divergence
    verdict, quarantine/restart complete degraded -- and every policy's
    served outcome is byte-identical to the single-shot run.
    """

    FAULTED = {"workload": "dedup", "scale": 0.05, "seed": 5,
               "variants": 3, "faults": "crash@v1:3"}

    @pytest.mark.parametrize("policy,verdict", [
        ("kill-all", "divergence"),
        ("quarantine", "degraded"),
        ("restart", "degraded"),
    ])
    def test_policy_outcomes_match_single_shot(self, policy, verdict):
        spec_dict = dict(self.FAULTED, policy=policy)
        oracle = run_session_cell(dict(spec_dict), "oracle")
        assert oracle["verdict"] == verdict
        session = Session(
            "s-p", SessionSpec.from_dict(dict(spec_dict)).validate())
        while True:
            envelope = session.step(400)
            if envelope["done"]:
                break
        assert envelope["result"]["verdict"] == verdict
        assert envelope["result"]["obs_digest"] == oracle["obs_digest"]
        if policy == "quarantine":
            assert envelope["result"]["quarantines"]
