"""Host telemetry through the serve stack.

Three layers are pinned here:

* the dual-scope ``metrics`` op — host Prometheus exposition without an
  ``id``, the session's guest metrics with one — and the single-source
  guarantee that its counters agree with ``serve status``;
* the end-to-end distributed trace: one CLI-rooted trace context
  crossing a real socket into the daemon, into the session cell, and
  into a pool worker, merged into one Chrome trace file;
* trace persistence across daemon death: a session resumed from disk
  keeps its original trace_id (the spec journals it) and its
  post-resume spans carry the ``resumed`` annotation.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.registry import SessionRegistry
from repro.serve.session import SessionSpec
from repro.telemetry import reset_host_metrics
from repro.telemetry.context import new_context
from repro.telemetry.prometheus import parse_prometheus
from repro.telemetry.spans import (
    ENV_DIR,
    configure,
    merge_host_trace,
    read_spans,
    reset,
    span,
)

NGINX = {"workload": "nginx", "seed": 7}


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    monkeypatch.delenv(ENV_DIR, raising=False)
    reset()
    reset_host_metrics()
    yield
    # A daemon started with telemetry_dir exports REPRO_TELEMETRY_DIR
    # for its workers; scrub it so later tests start dark.
    os.environ.pop(ENV_DIR, None)
    reset()
    reset_host_metrics()


class TestHostMetricsOp:
    @pytest.fixture
    def daemon(self):
        instance = ServeDaemon(ServeConfig(port=0))
        instance.start()
        yield instance
        instance.stop()

    def test_idless_metrics_returns_host_exposition(self, daemon):
        with ServeClient(*daemon.address) as client:
            client.run_to_verdict(dict(NGINX))
            response = client.host_metrics()
        assert response["scope"] == "host"
        families = parse_prometheus(response["exposition"])
        assert "repro_host_serve_ops_total" in families
        assert "repro_host_serve_op_latency_s" in families
        snapshot = response["metrics"]
        assert snapshot["host.serve.ops"] >= 3  # create+run+close

    def test_metrics_with_id_still_serves_guest_metrics(self, daemon):
        with ServeClient(*daemon.address) as client:
            session_id = client.create(dict(NGINX))
            client.run(session_id, wait=True)
            response = client.metrics(session_id)
        assert response["id"] == session_id
        assert "exposition" not in response

    def test_status_and_metrics_share_one_source(self, daemon):
        with ServeClient(*daemon.address) as client:
            client.run_to_verdict(dict(NGINX))
            status = client.status()
            snapshot = client.host_metrics()["metrics"]
        assert snapshot["host.serve.sessions_created_total"] == \
            status["created_total"]
        assert snapshot["host.executor.submitted"] == \
            status["executor"]["submitted"]

    def test_op_errors_counted(self, daemon):
        from repro.errors import SessionNotFound

        with ServeClient(*daemon.address) as client:
            with pytest.raises(SessionNotFound):
                client.poll("s-404")
            snapshot = client.host_metrics()["metrics"]
        assert snapshot["host.serve.op_errors"] >= 1
        assert snapshot["host.serve.op.poll"] >= 1


class TestEndToEndTrace:
    def test_cli_daemon_session_worker_one_trace(self, tmp_path,
                                                 monkeypatch):
        telemetry_dir = str(tmp_path / "telemetry")
        daemon = ServeDaemon(ServeConfig(
            port=0, jobs=2, env="process",
            telemetry_dir=telemetry_dir))
        host, port = daemon.start()
        try:
            # The CLI half: a root span whose context rides every
            # request this client sends.
            configure(telemetry_dir, service="cli")
            with span("cli.serve", track="cli") as root:
                with ServeClient(host, port) as client:
                    result = client.run_to_verdict(dict(NGINX))
            assert result["verdict"] == "clean"
            trace_id = root.ctx.trace_id
        finally:
            daemon.stop()

        records = read_spans(telemetry_dir)
        services = {r["service"] for r in records}
        assert {"cli", "daemon", "session", "worker"} <= services
        # Every hop is one trace, rooted at the CLI span.
        assert {r["trace"] for r in records} == {trace_id}
        worker_spans = [r for r in records if r["service"] == "worker"]
        assert worker_spans and all(
            r["pid"] != os.getpid() for r in worker_spans)

        out = tmp_path / "merged.trace.json"
        merged = merge_host_trace(telemetry_dir, str(out))
        assert merged["tracks"] >= 4
        events = json.loads(out.read_text())["traceEvents"]
        tracks = {e["args"]["name"] for e in events
                  if e.get("ph") == "M"}
        assert "cli" in tracks and "daemon" in tracks
        assert any(t.startswith("session ") for t in tracks)
        assert any(t.startswith("worker ") for t in tracks)

    def test_no_trace_field_on_wire_when_telemetry_off(self):
        daemon = ServeDaemon(ServeConfig(port=0))
        daemon.start()
        try:
            with ServeClient(*daemon.address) as client:
                session_id = client.create(dict(NGINX))
                session = daemon.registry.get(session_id)
                assert session.spec.trace is None
                assert "trace" not in session.spec.to_dict()
        finally:
            daemon.stop()


class TestTraceSurvivesDaemonDeath:
    """Satellite: resumed sessions keep the original trace_id."""

    SPEC = {"workload": "nginx", "seed": 5, "policy": "restart"}
    CHECKPOINT_EVERY = 10_000.0
    STEP_EVENTS = 25

    def _drive(self, session, limit=200):
        for _ in range(limit):
            with session.lock:
                envelope = session.step(self.STEP_EVENTS)
            if envelope["done"]:
                return envelope["result"]
        raise AssertionError("session did not finish within budget")

    def test_resumed_spans_carry_original_trace(self, tmp_path):
        telemetry_dir = str(tmp_path / "telemetry")
        configure(telemetry_dir, service="daemon")
        ctx = new_context()
        spec = SessionSpec.from_dict(
            {**self.SPEC, "trace": ctx.to_dict()}).validate()

        state = tmp_path / "state"
        registry = SessionRegistry(
            state_dir=str(state),
            checkpoint_every=self.CHECKPOINT_EVERY)
        session = registry.create(spec)
        registry.mark(session, "running")
        for _ in range(8):
            with session.lock:
                envelope = session.step(self.STEP_EVENTS)
            assert not envelope["done"]
        session.release_writer()   # crash: no seal, no journal update
        registry.shutdown()
        log_path = session.decision_log_path()
        with open(log_path, "rb+") as handle:
            handle.truncate(os.path.getsize(log_path) - 30)
        pre_crash = len(read_spans(telemetry_dir))
        assert pre_crash >= 8   # flushed per span: the kill lost none

        recovered = SessionRegistry(
            state_dir=str(state),
            checkpoint_every=self.CHECKPOINT_EVERY)
        survivor = recovered.get(session.id)
        # The journaled spec carried the trace across the "restart".
        assert survivor.spec.trace == ctx.to_dict()
        assert survivor.resume_from_disk
        result = self._drive(survivor)
        recovered.shutdown()
        assert result["verdict"] == "clean"

        records = read_spans(telemetry_dir)
        step_spans = [r for r in records
                      if r["name"] == "session.step"]
        assert {r["trace"] for r in step_spans} == {ctx.trace_id}
        post_resume = step_spans[pre_crash:]
        assert post_resume
        assert all((r.get("attrs") or {}).get("resumed")
                   for r in post_resume)

    def test_spec_without_trace_keeps_old_journal_shape(self, tmp_path):
        registry = SessionRegistry(state_dir=str(tmp_path / "s"))
        session = registry.create(
            SessionSpec.from_dict(dict(NGINX)).validate())
        registry.shutdown()
        with open(registry.journal_path) as handle:
            entry = json.loads(handle.readline())
        assert "trace" not in entry["spec"]
        assert session.spec.trace is None
