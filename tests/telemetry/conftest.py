"""Shared isolation for the telemetry tests: every test starts with
span recording off, no inherited REPRO_TELEMETRY_DIR, and an empty
host metrics registry."""

import os

import pytest

from repro.telemetry import reset_host_metrics
from repro.telemetry.spans import ENV_DIR, ENV_SERVICE, reset


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    monkeypatch.delenv(ENV_DIR, raising=False)
    monkeypatch.delenv(ENV_SERVICE, raising=False)
    reset()
    reset_host_metrics()
    yield
    os.environ.pop(ENV_DIR, None)
    reset()
    reset_host_metrics()
