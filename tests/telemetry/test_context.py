"""Trace-context basics: derivation, thread-local stack, wire form."""

from repro.telemetry.context import (
    TraceContext,
    current_context,
    new_context,
    use_context,
    wire_context,
)


class TestTraceContext:
    def test_new_context_is_a_root(self):
        ctx = new_context()
        assert ctx.trace_id and ctx.span_id
        assert ctx.parent_id is None
        assert ctx.trace_id != ctx.span_id

    def test_child_keeps_trace_id_and_links_parent(self):
        parent = new_context()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_roots_are_distinct(self):
        assert new_context().trace_id != new_context().trace_id

    def test_wire_round_trip(self):
        ctx = new_context().child()
        back = TraceContext.from_dict(ctx.to_dict())
        assert back == ctx

    def test_root_wire_dict_omits_parent(self):
        assert "parent_id" not in new_context().to_dict()

    def test_from_dict_tolerates_garbage(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict("nope") is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace_id": 7}) is None
        # A trace_id alone is enough; a span_id is minted.
        ctx = TraceContext.from_dict({"trace_id": "abc",
                                      "parent_id": 12})
        assert ctx.trace_id == "abc"
        assert ctx.span_id
        assert ctx.parent_id is None


class TestCurrentContext:
    def test_no_context_by_default(self):
        assert current_context() is None
        assert wire_context() is None

    def test_use_context_installs_and_restores(self):
        ctx = new_context()
        with use_context(ctx):
            assert current_context() == ctx
            assert wire_context() == ctx.to_dict()
        assert current_context() is None

    def test_contexts_nest(self):
        outer, inner = new_context(), new_context()
        with use_context(outer):
            with use_context(inner):
                assert current_context() == inner
            assert current_context() == outer

    def test_use_none_is_a_no_op(self):
        with use_context(None):
            assert current_context() is None
