"""Host metrics registry: event-time feeds and scrape-time publishing."""

from repro.telemetry import hostmetrics
from repro.telemetry.hostmetrics import (
    host_registry,
    host_snapshot,
    publish_executor_stats,
    publish_pool_stats,
    publish_serve_status,
)


class TestEventTimeFeeds:
    def test_inc_and_snapshot(self):
        hostmetrics.inc("host.transport.inline_results")
        hostmetrics.inc("host.transport.inline_results", 2)
        assert host_snapshot()["host.transport.inline_results"] == 3

    def test_observe_seconds_buckets(self):
        hostmetrics.observe_seconds("host.serve.op_latency_s", 0.002)
        hist = host_registry().histogram(
            "host.serve.op_latency_s", hostmetrics.LATENCY_BUCKETS_S)
        assert hist.count == 1

    def test_set_gauge_tracks_high_water(self):
        hostmetrics.set_gauge("host.executor.in_flight", 5)
        hostmetrics.set_gauge("host.executor.in_flight", 2)
        gauge = host_registry().gauge("host.executor.in_flight")
        assert gauge.value == 2 and gauge.max == 5


class TestPublishing:
    def test_pool_stats_become_counters_and_gauges(self):
        publish_pool_stats({"size": 4, "alive": 3, "spawned": 7,
                            "respawns": 2, "stall_kills": 1,
                            "reaped": 0, "tasks": 40, "batches": 5})
        snap = host_snapshot()
        assert snap["host.pool.spawned"] == 7
        assert snap["host.pool.tasks"] == 40
        assert snap["host.pool.size"]["value"] == 4.0
        assert snap["host.pool.alive"]["value"] == 3.0

    def test_publishing_is_monotone_not_additive(self):
        # Publish-at-read must be idempotent: scraping twice (status
        # then metrics op) cannot double-count.
        for _ in range(3):
            publish_pool_stats({"spawned": 7})
        assert host_snapshot()["host.pool.spawned"] == 7

    def test_stale_publish_never_regresses(self):
        publish_pool_stats({"spawned": 7})
        publish_pool_stats({"spawned": 3})   # fresh pool, reset source
        assert host_snapshot()["host.pool.spawned"] == 7

    def test_scheduler_counters_nest(self):
        publish_pool_stats({"scheduler": {"steals": 4,
                                          "cells_stolen": 11}})
        snap = host_snapshot()
        assert snap["host.steal.steals"] == 4
        assert snap["host.steal.cells_stolen"] == 11

    def test_executor_stats_recurse_into_pool(self):
        publish_executor_stats({
            "jobs": 4, "submitted": 10, "completed": 8,
            "in_flight": 2, "queued": 1,
            "pool": {"spawned": 4},
            "scheduler": {"steals": 2},
        })
        snap = host_snapshot()
        assert snap["host.executor.submitted"] == 10
        assert snap["host.executor.queued"]["value"] == 1.0
        assert snap["host.pool.spawned"] == 4
        assert snap["host.steal.steals"] == 2

    def test_serve_status_per_state_gauges(self):
        publish_serve_status({
            "created_total": 6, "rejected_total": 1,
            "active": 2, "peak_active": 3,
            "sessions": {"created": 1, "running": 1, "finished": 4},
        })
        snap = host_snapshot()
        assert snap["host.serve.sessions_created_total"] == 6
        assert snap["host.serve.sessions_rejected_total"] == 1
        assert snap["host.serve.sessions_running"]["value"] == 1.0
        assert snap["host.serve.sessions_peak_active"]["max"] == 3.0

    def test_publish_tolerates_none_and_empty(self):
        publish_pool_stats(None)
        publish_executor_stats({})
        publish_serve_status(None)
        assert host_snapshot() == {}


class TestSingleSource:
    def test_pool_stats_read_publishes(self):
        from repro.par.pool import WorkerPool

        pool = WorkerPool(2)
        try:
            stats = pool.stats()
            assert stats["spawned"] == 0
            assert host_snapshot()["host.pool.size"]["value"] == 2.0
        finally:
            pool.shutdown()

    def test_scheduler_stats_read_publishes(self):
        from repro.par.stealing import StealScheduler

        scheduler = StealScheduler(items=6, workers=2)
        # Drain worker 1 then make worker 0 steal.
        while scheduler.next_for(1) is not None:
            pass
        scheduler.stats()
        snap = host_snapshot()
        assert snap["host.steal.steals"] >= 1
