"""The overhead gate: telemetry measures its own host cost."""

from repro.par.bench import bench_tasks, build_matrix
from repro.telemetry.overhead import measure_cell_overhead


class TestMeasureCellOverhead:
    def test_block_shape_and_zero_perturbation(self):
        task = bench_tasks(build_matrix(quick=True, scale=0.02))[0]
        block = measure_cell_overhead(task, repeats=1)
        assert block["repeats"] == 1
        assert block["cell"]["sweep_id"] == task.sweep_id
        assert block["bare_wall_s"] > 0
        assert block["traced_wall_s"] > 0
        assert isinstance(block["overhead_frac"], float)
        # The traced arm actually recorded host spans...
        assert block["spans_recorded"] >= 1
        # ...and the simulated outputs did not move: the contract.
        assert block["digest_identical"] is True
