"""Prometheus exposition: renderer and the matching validator."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.telemetry.prometheus import (
    parse_prometheus,
    prom_name,
    render_prometheus,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("host.pool.spawned").inc(4)
    registry.gauge("host.executor.in_flight").set(2)
    registry.gauge("host.executor.in_flight").set(1)
    hist = registry.histogram("host.serve.op_latency_s",
                              (0.001, 0.01, 0.1))
    for value in (0.0005, 0.004, 0.05, 0.5):
        hist.observe(value)
    return registry


class TestRender:
    def test_counter_family(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_host_pool_spawned_total counter" in text
        assert "\nrepro_host_pool_spawned_total 4\n" in text

    def test_gauge_carries_high_water_mark(self):
        text = render_prometheus(_registry())
        assert "repro_host_executor_in_flight 1\n" in text
        assert "repro_host_executor_in_flight_max 2\n" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(_registry())
        base = prom_name("host.serve.op_latency_s")
        assert f'{base}_bucket{{le="0.001"}} 1' in text
        assert f'{base}_bucket{{le="0.01"}} 2' in text
        assert f'{base}_bucket{{le="0.1"}} 3' in text
        assert f'{base}_bucket{{le="+Inf"}} 4' in text
        assert f"{base}_count 4" in text

    def test_output_is_deterministic(self):
        assert render_prometheus(_registry()) == \
            render_prometheus(_registry())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_prom_name_sanitises(self):
        assert prom_name("host.pool.spawned") == \
            "repro_host_pool_spawned"
        assert prom_name("weird name/2") == "repro_weird_name_2"


class TestParseRoundTrip:
    def test_rendered_output_validates(self):
        families = parse_prometheus(render_prometheus(_registry()))
        assert families["repro_host_pool_spawned_total"]["type"] == \
            "counter"
        hist = families[prom_name("host.serve.op_latency_s")]
        assert hist["type"] == "histogram"
        # _bucket/_sum/_count folded into the family: 4 buckets + 2.
        assert len(hist["samples"]) == 6

    def test_values_survive_the_round_trip(self):
        families = parse_prometheus(render_prometheus(_registry()))
        (name, labels, value) = \
            families["repro_host_pool_spawned_total"]["samples"][0]
        assert value == 4.0
        inf_bucket = [
            v for n, lab, v in
            families[prom_name("host.serve.op_latency_s")]["samples"]
            if lab.get("le") == "+Inf"]
        assert inf_bucket == [4.0]


class TestValidator:
    def test_malformed_sample_is_named(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("this is not a sample !!!")

    def test_bad_value_is_named(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_prometheus("# TYPE x counter\nx bananas")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus("# TYPE x wat\nx 1")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus("orphan_metric 1")

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus('# TYPE x counter\nx{le=unquoted} 1')

    def test_histogram_without_inf_bucket_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 2\n'
                "h_sum 1.0\n"
                "h_count 2\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_histogram_nonmonotone_buckets_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\n"
                "h_count 3\n")
        with pytest.raises(ValueError, match="not monotone"):
            parse_prometheus(text)

    def test_histogram_inf_must_equal_count(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\n"
                "h_count 4\n")
        with pytest.raises(ValueError, match="!= _count"):
            parse_prometheus(text)

    def test_special_values_parse(self):
        families = parse_prometheus(
            "# TYPE x gauge\nx +Inf\n# TYPE y gauge\ny NaN")
        assert families["x"]["samples"][0][2] == math.inf
        assert math.isnan(families["y"]["samples"][0][2])
