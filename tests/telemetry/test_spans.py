"""Span recording and the multi-process trace merger."""

import json
import os

from repro.telemetry.context import current_context, new_context
from repro.telemetry.spans import (
    GUEST_PID_BASE,
    configure,
    enabled,
    merge_host_trace,
    read_spans,
    scoped,
    span,
)


class TestSpanRecording:
    def test_disabled_by_default(self):
        assert not enabled()

    def test_disabled_span_is_a_usable_no_op(self, tmp_path):
        with span("quiet", op="x") as live:
            live.attrs["extra"] = 1
            assert current_context() is not None
        assert read_spans(str(tmp_path)) == []

    def test_span_writes_one_record(self, tmp_path):
        configure(str(tmp_path), service="testsvc")
        with span("work", track="cli", op="bench") as live:
            live.attrs["items"] = 3
        records = read_spans(str(tmp_path))
        assert len(records) == 1
        record = records[0]
        assert record["name"] == "work"
        assert record["service"] == "testsvc"
        assert record["track"] == "cli"
        assert record["pid"] == os.getpid()
        assert record["dur_ns"] >= 0
        assert record["attrs"] == {"op": "bench", "items": 3}

    def test_nested_spans_parent_correctly(self, tmp_path):
        configure(str(tmp_path))
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r["name"]: r for r in read_spans(str(tmp_path))}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None

    def test_explicit_ctx_is_used_verbatim(self, tmp_path):
        configure(str(tmp_path))
        ctx = new_context().child()
        with span("hop", ctx=ctx):
            pass
        (record,) = read_spans(str(tmp_path))
        assert record["trace"] == ctx.trace_id
        assert record["span"] == ctx.span_id
        assert record["parent"] == ctx.parent_id

    def test_scoped_restores_previous_configuration(self, tmp_path):
        with scoped(str(tmp_path), service="arm"):
            assert enabled()
            with span("measured"):
                pass
        assert not enabled()
        assert len(read_spans(str(tmp_path))) == 1

    def test_spans_survive_without_flushless_loss(self, tmp_path):
        # Append+flush per span: the file is complete even while the
        # process is still alive (a killed daemon loses nothing).
        configure(str(tmp_path), service="daemon")
        for index in range(5):
            with span(f"op-{index}"):
                pass
        files = [n for n in os.listdir(tmp_path)
                 if n.startswith("spans-daemon-")]
        assert len(files) == 1
        with open(tmp_path / files[0]) as handle:
            assert len(handle.readlines()) == 5


class TestMergeHostTrace:
    def _record(self, tmp_path):
        configure(str(tmp_path), service="cli")
        with span("cli.bench", track="cli"):
            with span("serve.run", track="daemon", service="daemon"):
                with span("cell", track="worker 123",
                          service="worker"):
                    pass

    def test_merge_builds_one_process_per_track(self, tmp_path):
        self._record(tmp_path)
        out = tmp_path / "merged.trace.json"
        merged = merge_host_trace(str(tmp_path), str(out))
        assert merged["spans"] == 3
        assert merged["tracks"] == 3
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e.get("ph") == "M"}
        assert names == {"cli", "daemon", "worker 123"}
        slices = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in slices} == {"cli.bench",
                                               "serve.run", "cell"}
        # Timestamps are rebased: the earliest slice starts at ~0.
        assert min(e["ts"] for e in slices) == 0.0

    def test_merged_spans_share_one_trace_id(self, tmp_path):
        self._record(tmp_path)
        out = tmp_path / "merged.trace.json"
        merge_host_trace(str(tmp_path), str(out))
        slices = [e for e in
                  json.loads(out.read_text())["traceEvents"]
                  if e.get("ph") == "X"]
        assert len({e["args"]["trace"] for e in slices}) == 1

    def test_guest_trace_rides_along_shifted(self, tmp_path):
        self._record(tmp_path)
        guest = tmp_path / "guest.json"
        guest.write_text(json.dumps({"traceEvents": [
            {"ph": "M", "pid": 0, "name": "process_name",
             "args": {"name": "variant 0"}},
            {"ph": "X", "pid": 0, "tid": 1, "name": "sync",
             "ts": 1.0, "dur": 2.0},
        ]}))
        out = tmp_path / "merged.trace.json"
        merged = merge_host_trace(str(tmp_path), str(out),
                                  guest_trace=str(guest))
        events = json.loads(out.read_text())["traceEvents"]
        guest_events = [e for e in events
                        if e.get("pid", 0) >= GUEST_PID_BASE]
        assert len(guest_events) == 2
        meta = [e for e in guest_events if e.get("ph") == "M"][0]
        assert meta["args"]["name"] == "guest: variant 0"
        assert merged["events"] == len(events)

    def test_merge_tolerates_torn_tail(self, tmp_path):
        self._record(tmp_path)
        # Simulate a span file torn mid-write by a daemon kill.
        victim = sorted(p for p in os.listdir(tmp_path)
                        if p.startswith("spans-"))[0]
        with open(tmp_path / victim, "a") as handle:
            handle.write('{"trace": "torn')
        merged = merge_host_trace(str(tmp_path),
                                  str(tmp_path / "out.json"))
        assert merged["spans"] == 3

    def test_merge_of_empty_directory(self, tmp_path):
        out = tmp_path / "empty.trace.json"
        merged = merge_host_trace(str(tmp_path), str(out))
        assert merged == {"spans": 0, "tracks": 0, "events": 0,
                          "out": str(out)}
        assert json.loads(out.read_text())["traceEvents"] == []
