"""The ``repro top`` live view: pure rendering + the poll loop."""

import io

from repro.obs.metrics import MetricsRegistry
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.top import render_top, run_top

STATUS = {
    "uptime_s": 12.5,
    "active": 2, "max_sessions": 64, "peak_active": 3,
    "created_total": 9, "rejected_total": 1,
    "executor": {"env": "process", "jobs": 4, "in_flight": 2,
                 "queued": 1, "completed": 6, "submitted": 8},
    "sessions_detail": [
        {"id": "s-7", "state": "running", "workload": "nginx",
         "steps": 12, "verdict": None},
        {"id": "s-3", "state": "finished", "workload": "dedup",
         "steps": 4, "verdict": "clean"},
    ],
}


def _metrics_response() -> dict:
    registry = MetricsRegistry()
    registry.counter("host.pool.spawned").inc(4)
    registry.counter("host.steal.steals").inc(2)
    registry.counter("host.transport.inline_results").inc(10)
    registry.counter("host.serve.ops").inc(20)
    hist = registry.histogram("host.serve.op_latency_s", (0.01, 0.1))
    hist.observe(0.002)
    hist.observe(0.004)
    return {"exposition": render_prometheus(registry)}


class TestRenderTop:
    def test_full_view(self):
        lines = render_top(STATUS, _metrics_response())
        text = "\n".join(lines)
        assert "up 12s" in text or "up 13s" in text
        assert "active 2/64" in text
        assert "env process" in text and "done 6/8" in text
        assert "spawned 4" in text and "steals 2" in text
        assert "inline 10" in text
        assert "ops 20" in text and "mean latency 3.00ms" in text
        assert "s-7" in text and "running" in text
        assert "clean" in text

    def test_missing_sections_shorten_not_crash(self):
        lines = render_top({}, {})
        text = "\n".join(lines)
        assert "repro top" in text
        assert "(no sessions)" in text

    def test_exposition_is_validated(self):
        import pytest

        with pytest.raises(ValueError):
            render_top(STATUS, {"exposition": "garbage !!!"})


class TestRunTop:
    def test_unreachable_daemon_exits_one(self):
        out = io.StringIO()
        code = run_top("127.0.0.1", 1, interval_s=0.01,
                       iterations=1, out=out)
        assert code == 1
        assert "cannot reach serve daemon" in out.getvalue()

    def test_once_against_a_live_daemon(self):
        from repro.serve.daemon import ServeConfig, ServeDaemon

        daemon = ServeDaemon(ServeConfig(port=0))
        host, port = daemon.start()
        try:
            out = io.StringIO()
            code = run_top(host, port, interval_s=0.01,
                           iterations=1, out=out)
            assert code == 0
            text = out.getvalue()
            assert "repro top" in text
            assert "ops" in text
        finally:
            daemon.stop()
