"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fft"])
        assert args.agent == "wall_of_clocks"
        assert args.variants == 2
        assert not args.diversity


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "radiosity" in out and "pipeline" in out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "libc-2.19.so" in capsys.readouterr().out

    def test_run_clean_exits_zero(self, capsys):
        code = main(["run", "fft", "--agent", "wall_of_clocks",
                     "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict   : clean" in out

    def test_run_divergence_exits_nonzero(self, capsys):
        code = main(["run", "radiosity", "--agent", "none",
                     "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "divergence" in out

    def test_fig5_subset(self, capsys):
        assert main(["fig5", "--benchmarks", "fft",
                     "--scale", "0.1"]) == 0
        assert "fft" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        code = main(["trace", "volrend", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: clean" in out
        assert "sync-op replay, v1" in out


class TestObservabilityFlags:
    def test_run_with_trace_out_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        code = main(["run", "fft", "--scale", "0.05",
                     "--trace-out", str(trace), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace     : wrote" in out
        assert "-- metrics --" in out
        assert "monitor.calls" in out
        data = json.loads(trace.read_text())
        assert data["traceEvents"]

    def test_trace_command_with_obs_flags(self, capsys, tmp_path):
        trace = tmp_path / "trace.trace.json"
        code = main(["trace", "volrend", "--scale", "0.05",
                     "--trace-out", str(trace), "--metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "-- metrics --" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_clean_run_writes_no_bundle(self, capsys, tmp_path):
        bundle = tmp_path / "bundle.json"
        code = main(["run", "fft", "--scale", "0.05",
                     "--bundle-out", str(bundle)])
        out = capsys.readouterr().out
        assert code == 0
        assert "did not diverge" in out
        assert not bundle.exists()

class TestFaultFlags:
    def test_run_parser_fault_defaults(self):
        args = build_parser().parse_args(["run", "fft"])
        assert args.faults is None
        assert args.policy == "kill-all"
        assert args.watchdog is None

    def test_injected_crash_kill_all_exits_nonzero(self, capsys):
        code = main(["run", "dedup", "--scale", "0.1", "--variants", "3",
                     "--faults", "crash@v1:3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict   : divergence" in out
        assert "planned 1, injected 1" in out

    def test_injected_crash_quarantine_exits_zero(self, capsys):
        code = main(["run", "dedup", "--scale", "0.1", "--variants", "3",
                     "--faults", "crash@v1:3",
                     "--policy", "quarantine"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict   : degraded" in out
        assert "quarantine: variant 1 quarantined" in out

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        code = main(["run", "dedup", "--faults", "nonsense"])
        assert code == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_fault_bundle_summarize_surfaces_faults(self, capsys,
                                                    tmp_path):
        bundle = tmp_path / "bundle.json"
        code = main(["run", "dedup", "--scale", "0.1", "--variants", "3",
                     "--faults", "crash@v1:3",
                     "--policy", "quarantine",
                     "--bundle-out", str(bundle)])
        out = capsys.readouterr().out
        assert code == 0
        assert bundle.exists()

        assert main(["obs", "summarize", str(bundle)]) == 0
        summary = capsys.readouterr().out
        assert "faults injected: 1 (crash=1)" in summary
        assert "first fault : crash in v1" in summary
        assert "recovery: quarantined v1" in summary

    def test_fault_matrix_command(self, capsys):
        code = main(["fault-matrix", "--benchmark", "fft",
                     "--scale", "0.05", "--kinds", "crash",
                     "--policies", "kill-all,quarantine"])
        out = capsys.readouterr().out
        assert code == 0
        assert "survival matrix" in out
        assert "quarantine" in out


class TestBundleLifecycle:
    def test_divergent_run_bundle_lifecycle(self, capsys, tmp_path):
        """--bundle-out writes a bundle; `obs` summarizes/converts it."""
        bundle = tmp_path / "bundle.json"
        code = main(["run", "radiosity", "--agent", "none",
                     "--scale", "0.1", "--bundle-out", str(bundle)])
        out = capsys.readouterr().out
        assert code == 1
        assert "wrote forensics bundle" in out
        assert bundle.exists()

        assert main(["obs", "summarize", str(bundle)]) == 0
        summary = capsys.readouterr().out
        assert "divergence bundle" in summary

        converted = tmp_path / "bundle.trace.json"
        assert main(["obs", "convert", str(bundle),
                     "-o", str(converted)]) == 0
        assert json.loads(converted.read_text())["traceEvents"]


class TestRacesCommand:
    def test_races_defaults(self):
        args = build_parser().parse_args(["races", "lint"])
        assert args.analysis == "andersen"
        assert not args.treat_volatile_as_sync

    def test_lint_flags_demo_modules(self, capsys):
        assert main(["races", "lint"]) == 1  # linter-style exit
        out = capsys.readouterr().out
        assert "listing2" in out
        assert "candidate" in out

    def test_lint_volatile_as_sync_clears_listing2(self, capsys):
        main(["races", "lint", "--treat-volatile-as-sync"])
        out = capsys.readouterr().out
        assert "listing2: clean" in out
        # the genuinely racy module stays flagged
        assert "racy_counter: 1 candidate" in out

    def test_lint_steensgaard_accepted(self, capsys):
        main(["races", "lint", "--analysis", "steensgaard"])
        assert "candidate" in capsys.readouterr().out

    def test_check_closes_the_gap(self, capsys):
        assert main(["races", "check"]) == 0
        out = capsys.readouterr().out
        assert "coverage gap" in out
        assert "nginx.spinlock" in out
        assert "closed after" in out

    def test_bench_renders_table(self, capsys):
        assert main(["races", "bench", "--benchmarks", "fft",
                     "--scale", "0.05", "--no-nginx"]) == 0
        out = capsys.readouterr().out
        assert "detector overhead" in out
        assert "fft" in out

    def test_run_race_detect_prints_summary(self, capsys):
        code = main(["run", "fft", "--scale", "0.1", "--race-detect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "races     : no races" in out

    def test_run_without_flag_no_race_line(self, capsys):
        main(["run", "fft", "--scale", "0.1"])
        assert "races     :" not in capsys.readouterr().out

    def test_table3_volatile_flag_accepted(self, capsys):
        assert main(["table", "3", "--treat-volatile-as-sync"]) == 0
        assert "libc-2.19.so" in capsys.readouterr().out

    def test_races_lint_json(self, capsys):
        import json

        assert main(["races", "lint", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        racy = next(e for e in payload if e["module"] == "racy_counter")
        assert racy["candidates"]
        assert {"object", "writes", "functions", "sites",
                "source_lines"} <= set(racy["candidates"][0])


class TestDeadlockCommand:
    def test_deadlock_defaults(self):
        args = build_parser().parse_args(["deadlock", "lint"])
        assert args.analysis == "andersen"
        assert not args.json
        assert args.seed == 1

    def test_lint_flags_abba_and_suppresses_trylock(self, capsys):
        assert main(["deadlock", "lint"]) == 1  # linter-style exit
        out = capsys.readouterr().out
        assert "lock_a -> lock_b -> lock_a" in out
        assert "[FLAGGED]" in out
        assert "abba.c:11" in out and "abba.c:21" in out
        assert "suppressed (trylock)" in out

    def test_lint_json(self, capsys):
        import json

        assert main(["deadlock", "lint", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        by_module = {entry["module"]: entry for entry in payload}
        assert set(by_module) == {"abba", "trylock_guarded",
                                  "philosophers"}
        (candidate,) = by_module["abba"]["candidates"]
        assert not candidate["suppressed"]
        assert "abba.thread_a.lock_b.cmpxchg" in candidate["sites"]
        (guarded,) = by_module["trylock_guarded"]["candidates"]
        assert guarded["suppressed"]
        assert guarded["suppression"] == "trylock"

    def test_lint_steensgaard_accepted(self, capsys):
        assert main(["deadlock", "lint", "--analysis",
                     "steensgaard"]) == 1
        assert "candidate" in capsys.readouterr().out

    def test_check_cross_validates(self, capsys):
        assert main(["deadlock", "check"]) == 0
        out = capsys.readouterr().out
        assert "confirmed" in out
        assert "refuted-by-guard" in out
        assert "unexercised" in out

    def test_run_deadlock_detect_prints_summary(self, capsys):
        code = main(["run", "fft", "--scale", "0.1",
                     "--deadlock-detect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "deadlocks : no deadlock" in out

    def test_run_without_flag_no_deadlock_line(self, capsys):
        main(["run", "fft", "--scale", "0.1"])
        assert "deadlocks :" not in capsys.readouterr().out


class TestListJson:
    def test_list_json_is_the_machine_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in catalog}
        assert "nginx" in by_name and "fft" in by_name
        assert by_name["nginx"]["kind"] == "service"
        assert by_name["fft"]["kind"] == "benchmark"

    def test_list_json_matches_daemon_workloads_op(self, capsys):
        from repro.workloads.spec import catalog

        main(["list", "--json"])
        assert json.loads(capsys.readouterr().out) == catalog()


class TestErrorContract:
    """Every subcommand maps ReproError to exit 2 + one stderr line."""

    def test_serve_status_dead_daemon_exits_two(self, capsys):
        # Port 1 is privileged and unbound: connection refused, fast.
        code = main(["serve", "status", "--port", "1"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("repro serve: ")
        assert "cannot reach serve daemon" in lines[0]

    def test_obs_missing_bundle_exits_two(self, capsys):
        code = main(["obs", "summarize", "/no/such/bundle.json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro obs: ")
        assert "Traceback" not in captured.err

    def test_bench_missing_reference_exits_two(self, capsys):
        code = main(["bench", "--compare", "/no/such/ref.json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro bench: ")


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.port == 7333
        assert args.max_sessions == 64
        assert args.sessions == 256
        assert args.concurrency == 72
        assert args.mode == "batch"

    def test_serve_bench_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(["serve", "bench", "--sessions", "4",
                     "--concurrency", "3", "--max-sessions", "2",
                     "--workload", "fft", "--seed", "3",
                     "-o", str(out)])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "4 completed" in stdout
        assert "quota rejection(s) retried" in stdout
        report = json.loads(out.read_text())
        assert report["kind"] == "repro-serve-bench"
        assert report["totals"]["completed"] == 4
        assert report["verified_single_shot"] is True

    def test_serve_bench_compare_carries_trajectory(self, capsys,
                                                    tmp_path):
        ref = tmp_path / "ref.json"
        assert main(["serve", "bench", "--sessions", "2",
                     "--concurrency", "2", "--max-sessions", "2",
                     "--workload", "fft", "-o", str(ref)]) == 0
        out = tmp_path / "next.json"
        assert main(["serve", "bench", "--sessions", "2",
                     "--concurrency", "2", "--max-sessions", "2",
                     "--workload", "fft", "--compare", str(ref),
                     "-o", str(out)]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert len(report["trajectory"]) == 1
        assert (report["trajectory"][0]["digest"]
                == json.loads(ref.read_text())["digest"])


class TestReplayCommands:
    """repro record / replay / checkpoint and the resync flags."""

    def _record(self, tmp_path, *extra):
        log = str(tmp_path / "run.decisions.jsonl")
        code = main(["record", "fft", "-o", log, "--scale", "0.05",
                     "--variants", "2", "--seed", "5", *extra])
        return code, log

    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        code, log = self._record(tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded  : fft x2" in out
        assert "digest    : sha256:" in out
        code = main(["replay", log])
        out = capsys.readouterr().out
        assert code == 0
        assert "(match)" in out
        assert "log digest: stable" in out
        assert "MISMATCH" not in out

    def test_run_record_writes_a_sealed_log(self, capsys, tmp_path):
        log = str(tmp_path / "from-run.decisions.jsonl")
        code = main(["run", "fft", "--scale", "0.05", "--seed", "5",
                     "--record", log])
        out = capsys.readouterr().out
        assert code == 0
        assert f"log       : {log}" in out
        assert main(["replay", log]) == 0
        assert "log digest: stable" in capsys.readouterr().out

    def test_replay_to_step_writes_forensics_bundle(self, capsys,
                                                    tmp_path):
        _, log = self._record(tmp_path)
        capsys.readouterr()
        bundle = str(tmp_path / "forensics.json")
        code = main(["replay", log, "--to-step", "40",
                     "--bundle-out", bundle])
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped   : step" in out
        data = json.load(open(bundle))
        assert data["kind"] == "repro-replay-forensics"
        assert data["stopped_at_step"] >= 40
        assert data["machine"]["cycles"] > 0
        assert data["recorded"]["k"] == "end"

    def test_replay_missing_log_exits_two(self, capsys):
        code = main(["replay", "/no/such/run.decisions.jsonl"])
        captured = capsys.readouterr()
        assert code == 2
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("repro replay: ")

    def test_checkpoint_inspects_store_and_log(self, capsys, tmp_path):
        ckpt = str(tmp_path / "run.ckpt.json")
        code, log = self._record(tmp_path, "--checkpoint-every",
                                 "50000", "--checkpoint-out", ckpt)
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpoint:" in out
        assert main(["checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "checkpoint store:" in out
        assert "#0: at" in out
        assert main(["checkpoint", log]) == 0
        out = capsys.readouterr().out
        assert "decision log:" in out
        assert "sealed  : verdict clean" in out

    def test_fault_matrix_reports_resync_mode(self, capsys):
        code = main(["fault-matrix", "--benchmark", "fft",
                     "--scale", "0.05", "--kinds", "crash",
                     "--policies", "restart",
                     "--resync-mode", "checkpoint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=checkpoint" in out
        assert "fast-forwarded" in out


class TestTelemetryCommands:
    """`repro telemetry` and `repro top`: the host observability CLI."""

    @pytest.fixture(autouse=True)
    def dark_telemetry(self, monkeypatch):
        from repro.telemetry import reset_host_metrics
        from repro.telemetry.spans import ENV_DIR, ENV_SERVICE, reset

        monkeypatch.delenv(ENV_DIR, raising=False)
        monkeypatch.delenv(ENV_SERVICE, raising=False)
        reset()
        reset_host_metrics()
        yield
        reset()
        reset_host_metrics()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["telemetry", "dump"])
        assert args.port == 7333 and args.dir is None
        args = build_parser().parse_args(["top", "--once"])
        assert args.once and args.interval == 2.0
        assert args.iterations is None

    def test_merge_writes_default_artifact(self, capsys, tmp_path):
        from repro.telemetry.spans import scoped, span

        directory = tmp_path / "telemetry"
        with scoped(str(directory), service="cli"):
            with span("cli.demo", track="cli"):
                pass
        assert main(["telemetry", "merge", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "merged    : 1 span(s)" in out
        trace = json.loads(
            (tmp_path / "telemetry.trace.json").read_text())
        names = [e["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "X"]
        assert names == ["cli.demo"]

    def test_merge_empty_dir_hints_at_setup(self, capsys, tmp_path):
        assert main(["telemetry", "merge", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 span(s)" in out
        assert "--telemetry-dir" in out

    def test_merge_without_dir_exits_two(self, capsys):
        assert main(["telemetry", "merge"]) == 2
        assert "directory is required" in capsys.readouterr().err

    def test_dump_dead_daemon_exits_two(self, capsys):
        code = main(["telemetry", "dump", "--port", "1"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro telemetry: ")
        assert "Traceback" not in captured.err

    def test_top_once_dead_daemon_exits_one(self, capsys):
        assert main(["top", "--once", "--port", "1"]) == 1
        assert "cannot reach serve daemon" in capsys.readouterr().out

    def test_env_var_roots_a_cli_span(self, capsys, monkeypatch,
                                      tmp_path):
        from repro.telemetry.spans import ENV_DIR, read_spans

        directory = tmp_path / "telemetry"
        monkeypatch.setenv(ENV_DIR, str(directory))
        assert main(["list", "--json"]) == 0
        capsys.readouterr()
        records = read_spans(str(directory))
        assert [r["name"] for r in records] == ["cli.list"]
        assert records[0]["service"] == "cli"
        assert records[0]["attrs"]["command"] == "list"
