"""Whole-system determinism: identical seeds give identical runs.

Everything in the simulation — scheduling, jitter, diversity layouts,
workload patterns — derives from explicit seeds, so repeated runs must
agree to the cycle.  This is what makes every other test in the suite
meaningful, and what a debugging session on an MVEE trace depends on.
"""

import pytest

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.run import run_native
from repro.workloads.synthetic import make_benchmark
from tests.guestlib import CounterProgram, ProducerConsumerProgram


class TestNativeDeterminism:
    @pytest.mark.parametrize("program_factory", [
        lambda: CounterProgram(workers=4, iters=50),
        lambda: ProducerConsumerProgram(),
        lambda: make_benchmark("barnes", scale=0.05),
        lambda: make_benchmark("dedup", scale=0.05),
    ])
    def test_repeat_runs_identical(self, program_factory):
        first = run_native(program_factory(), seed=11)
        second = run_native(program_factory(), seed=11)
        assert first.report.cycles == second.report.cycles
        assert first.stdout == second.stdout
        assert first.report.total_sync_ops == second.report.total_sync_ops


class TestMVEEDeterminism:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_repeat_mvee_runs_identical(self, agent, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=3, iters=40),
                            variants=2, agent=agent, seed=9,
                            costs=fast_costs,
                            diversity=DiversitySpec(aslr=True, seed=4))

        first, second = once(), once()
        assert first.verdict == second.verdict == "clean"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout

    def test_divergence_reports_reproducible(self, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=4, iters=150),
                            variants=2, agent=None, seed=7,
                            costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict == "divergence"
        assert str(first.divergence) == str(second.divergence)

    def test_different_seeds_differ_somewhere(self, fast_costs):
        cycles = {run_mvee(CounterProgram(workers=3, iters=40),
                           variants=2, agent="wall_of_clocks",
                           seed=seed, costs=fast_costs).cycles
                  for seed in range(4)}
        assert len(cycles) > 1
