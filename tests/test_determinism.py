"""Whole-system determinism: identical seeds give identical runs.

Everything in the simulation — scheduling, jitter, diversity layouts,
workload patterns — derives from explicit seeds, so repeated runs must
agree to the cycle.  This is what makes every other test in the suite
meaningful, and what a debugging session on an MVEE trace depends on.
"""

import pytest

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.faults import FaultPlan, FaultSpec
from repro.obs import ObsHub
from repro.run import run_native
from repro.workloads.synthetic import make_benchmark
from tests.guestlib import (
    CounterProgram,
    MutexCounterProgram,
    ProducerConsumerProgram,
)


class TestNativeDeterminism:
    @pytest.mark.parametrize("program_factory", [
        lambda: CounterProgram(workers=4, iters=50),
        lambda: ProducerConsumerProgram(),
        lambda: make_benchmark("barnes", scale=0.05),
        lambda: make_benchmark("dedup", scale=0.05),
    ])
    def test_repeat_runs_identical(self, program_factory):
        first = run_native(program_factory(), seed=11)
        second = run_native(program_factory(), seed=11)
        assert first.report.cycles == second.report.cycles
        assert first.stdout == second.stdout
        assert first.report.total_sync_ops == second.report.total_sync_ops


class TestMVEEDeterminism:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_repeat_mvee_runs_identical(self, agent, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=3, iters=40),
                            variants=2, agent=agent, seed=9,
                            costs=fast_costs,
                            diversity=DiversitySpec(aslr=True, seed=4))

        first, second = once(), once()
        assert first.verdict == second.verdict == "clean"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout

    def test_divergence_reports_reproducible(self, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=4, iters=150),
                            variants=2, agent=None, seed=7,
                            costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict == "divergence"
        assert str(first.divergence) == str(second.divergence)

    def test_different_seeds_differ_somewhere(self, fast_costs):
        cycles = {run_mvee(CounterProgram(workers=3, iters=40),
                           variants=2, agent="wall_of_clocks",
                           seed=seed, costs=fast_costs).cycles
                  for seed in range(4)}
        assert len(cycles) > 1


class TestFaultDeterminism:
    """Fault injection composes with seeded scheduling: the same
    ``(plan, seed)`` pair reproduces the same faults at the same cycles,
    and a disabled injector leaves the timeline byte-identical."""

    def _run(self, faults=None, policy=None, obs=None, costs=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, seed=7, costs=costs,
                        faults=faults, policy=policy, obs=obs)

    def test_same_fault_plan_reproduces_run_exactly(self, fast_costs):
        plan = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))

        def once():
            hub = ObsHub()
            outcome = self._run(
                faults=plan,
                policy=MonitorPolicy(degradation="quarantine"),
                obs=hub, costs=fast_costs)
            return outcome, hub

        (first, first_hub), (second, second_hub) = once(), once()
        assert first.verdict == second.verdict == "degraded"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout
        assert ([f.to_dict() for f in first.faults]
                == [f.to_dict() for f in second.faults])
        first_trace = [e.to_dict() for v in first_hub.tracer.variants()
                       for e in first_hub.tracer.tail(v)]
        second_trace = [e.to_dict() for v in second_hub.tracer.variants()
                        for e in second_hub.tracer.tail(v)]
        assert first_trace == second_trace

    def test_random_plan_reproducible_by_seed(self, fast_costs):
        def once():
            return self._run(
                faults=FaultPlan.random(5, n_variants=3),
                policy=MonitorPolicy(degradation="quarantine",
                                     watchdog_cycles=400_000.0),
                costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict
        assert first.cycles == second.cycles
        assert ([f.to_dict() for f in first.faults]
                == [f.to_dict() for f in second.faults])

    def test_fault_machinery_disabled_is_zero_cost(self, fast_costs):
        """No plan, an empty plan, an armed watchdog that never fires,
        and a degradation policy that never triggers must all produce the
        exact cycle count of the plain run."""
        baseline = self._run(costs=fast_costs)
        assert baseline.verdict == "clean"
        variants = [
            self._run(faults=FaultPlan(), costs=fast_costs),
            self._run(policy=MonitorPolicy(
                watchdog_cycles=1e9), costs=fast_costs),
            self._run(policy=MonitorPolicy(degradation="quarantine"),
                      costs=fast_costs),
            self._run(policy=MonitorPolicy(degradation="restart"),
                      costs=fast_costs),
        ]
        for outcome in variants:
            assert outcome.verdict == "clean"
            assert outcome.cycles == baseline.cycles
            assert outcome.stdout == baseline.stdout

    def test_disabled_faults_leave_obs_trace_identical(self, fast_costs):
        def trace_of(**kwargs):
            hub = ObsHub()
            outcome = self._run(obs=hub, costs=fast_costs, **kwargs)
            assert outcome.verdict == "clean"
            return [e.to_dict() for v in hub.tracer.variants()
                    for e in hub.tracer.tail(v)]

        assert trace_of() == trace_of(faults=FaultPlan())


class TestRaceDetectorDeterminism:
    """The race detector is an observer: attaching it must not move a
    single simulated cycle, and detaching it must cost nothing."""

    def _run(self, races=None, obs=None, costs=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, seed=7, costs=costs, races=races,
                        obs=obs)

    def test_detector_attached_is_zero_cost(self, fast_costs):
        from repro.races import RaceDetector

        baseline = self._run(costs=fast_costs)
        assert baseline.verdict == "clean"
        detected = self._run(races=RaceDetector(), costs=fast_costs)
        assert detected.verdict == "clean"
        assert detected.cycles == baseline.cycles
        assert detected.stdout == baseline.stdout

    def test_detector_leaves_obs_trace_identical(self, fast_costs):
        from repro.races import RaceDetector

        def trace_of(**kwargs):
            hub = ObsHub()
            outcome = self._run(obs=hub, costs=fast_costs, **kwargs)
            assert outcome.verdict == "clean"
            return [e.to_dict() for v in hub.tracer.variants()
                    for e in hub.tracer.tail(v)]

        assert trace_of() == trace_of(races=RaceDetector())

    def test_race_report_reproducible(self, fast_costs):
        from repro.races import RaceDetector

        def report_of():
            detector = RaceDetector(sync_sites=lambda site: False)
            outcome = self._run(races=detector, costs=fast_costs)
            return outcome, detector.report

        (first, first_report), (second, second_report) = \
            report_of(), report_of()
        assert first.cycles == second.cycles
        assert ([r.to_dict() for r in first_report.races]
                == [r.to_dict() for r in second_report.races])
        assert first_report.occurrences == second_report.occurrences

    def test_racy_classification_still_zero_cost(self, fast_costs):
        """Even when every op is race-checked (the expensive path), the
        simulated timeline must not move."""
        from repro.races import RaceDetector

        baseline = self._run(costs=fast_costs)
        detected = self._run(
            races=RaceDetector(sync_sites=lambda site: False),
            costs=fast_costs)
        assert detected.cycles == baseline.cycles
        assert detected.stdout == baseline.stdout


class TestDeadlockDetectorDeterminism:
    """The deadlock detector is an observer too: on runs that do not
    wedge, attaching it must not move a single simulated cycle."""

    def _run(self, deadlocks=None, obs=None, costs=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, seed=7, costs=costs,
                        deadlocks=deadlocks, obs=obs)

    def test_detector_attached_is_zero_cost(self, fast_costs):
        from repro.races import DeadlockDetector

        baseline = self._run(costs=fast_costs)
        assert baseline.verdict == "clean"
        watched = self._run(deadlocks=DeadlockDetector(), costs=fast_costs)
        assert watched.verdict == "clean"
        assert watched.cycles == baseline.cycles
        assert watched.stdout == baseline.stdout

    def test_detector_leaves_obs_trace_identical(self, fast_costs):
        from repro.races import DeadlockDetector

        def trace_of(**kwargs):
            hub = ObsHub()
            outcome = self._run(obs=hub, costs=fast_costs, **kwargs)
            assert outcome.verdict == "clean"
            return [e.to_dict() for v in hub.tracer.variants()
                    for e in hub.tracer.tail(v)]

        assert trace_of() == trace_of(deadlocks=DeadlockDetector())

    def test_guarded_wedge_run_is_zero_cost(self, fast_costs):
        """The trylock philosophers contend hard (refused acquisitions,
        futex parking) without deadlocking — the detector must stay
        invisible on that path too."""
        from repro.races import DeadlockDetector
        from repro.workloads import DiningPhilosophers

        def cycles_of(deadlocks):
            return run_mvee(DiningPhilosophers(3, trylock=True),
                            variants=2, seed=11, costs=fast_costs,
                            deadlocks=deadlocks).cycles

        assert cycles_of(None) == cycles_of(DeadlockDetector())

    def test_deadlock_report_reproducible(self, fast_costs):
        from repro.races import DeadlockDetector
        from repro.workloads import DiningPhilosophers

        def report_of():
            detector = DeadlockDetector()
            outcome = run_mvee(DiningPhilosophers(3), variants=2, seed=11,
                               costs=fast_costs, deadlocks=detector)
            assert outcome.verdict == "deadlock"
            return outcome, detector.report

        (first, first_report), (second, second_report) = \
            report_of(), report_of()
        assert first.cycles == second.cycles
        assert ([r.to_dict() for r in first_report.records]
                == [r.to_dict() for r in second_report.records])


class TestProfilerDeterminism:
    """The cycle profiler is an observer like the tracer and the race
    detector: obs=None, a plain hub, and a profiling hub must all
    produce the exact same simulated timeline — across agents and
    composed with fault injection and race detection."""

    def _run(self, agent, obs=None, costs=None, faults=None,
             policy=None, races=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, agent=agent, seed=7, costs=costs,
                        obs=obs, faults=faults, policy=policy,
                        races=races)

    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    @pytest.mark.parametrize("config", ["plain", "faulted",
                                        "race-detect"])
    def test_profiler_attached_is_zero_cost(self, agent, config,
                                            fast_costs):
        from repro.races import RaceDetector

        def run_with(obs):
            kwargs = {}
            if config == "faulted":
                kwargs["faults"] = FaultPlan(
                    (FaultSpec(kind="crash", variant=1, at=4),))
                kwargs["policy"] = MonitorPolicy(
                    degradation="quarantine")
            elif config == "race-detect":
                kwargs["races"] = RaceDetector()
            return self._run(agent, obs=obs, costs=fast_costs,
                             **kwargs)

        baseline = run_with(None)
        plain_hub = run_with(ObsHub())
        profiled = run_with(ObsHub(trace=False, profile=True))
        expected = "degraded" if config == "faulted" else "clean"
        assert baseline.verdict == expected
        for outcome in (plain_hub, profiled):
            assert outcome.verdict == baseline.verdict
            assert outcome.cycles == baseline.cycles
            assert outcome.stdout == baseline.stdout

    def test_profile_snapshot_reproducible(self, fast_costs):
        import json

        def profile_of():
            hub = ObsHub(trace=False, profile=True)
            outcome = self._run("wall_of_clocks", obs=hub,
                                costs=fast_costs)
            hub.prof.finalize(outcome.machine.now)
            return hub.prof.snapshot().to_dict()

        first, second = profile_of(), profile_of()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))


class TestParallelSweepDeterminism:
    """The parallel engine must not cost a bit of determinism: the
    aggregated output of a sharded sweep is pinned to a golden digest,
    and the digest is invariant in the worker count."""

    #: sha256 over the canonical (host-time-free) cells of the quick
    #: bench matrix at seed=1.  Pure function of the simulator — any
    #: change to workload synthesis, the scheduler, or the monitor that
    #: moves a simulated cycle shows up here.
    GOLDEN_QUICK_DIGEST = \
        "sha256:29ff2774d57723fcb9cf16eeb61528edc54a4e94a0fceb8aa765515613c74e87"

    def _digest(self, jobs):
        from repro.experiments.runner import reset_caches
        from repro.par.bench import (bench_tasks, build_matrix,
                                     canonical_cells, digest_of)
        from repro.par.engine import run_cells

        reset_caches()
        matrix = build_matrix(quick=True, seed=1)
        results = run_cells(bench_tasks(matrix), jobs=jobs)
        return digest_of(canonical_cells(results))

    def test_quick_matrix_matches_golden_digest(self):
        assert self._digest(jobs=1) == self.GOLDEN_QUICK_DIGEST

    def test_digest_invariant_in_worker_count(self):
        assert self._digest(jobs=2) == self.GOLDEN_QUICK_DIGEST

    def test_derived_seeds_are_frozen(self):
        """Seed derivation is part of the determinism contract: pin the
        first cells of the bench sweep's seed stream."""
        from repro.par.seeds import derive_cell_seed

        assert [derive_cell_seed("bench", index, 1)
                for index in range(3)] == [
            1664854912858333258,
            8864461619434748378,
            340529501838569161,
        ]
        assert len({derive_cell_seed("bench", index, 1)
                    for index in range(64)}) == 64


class TestBenchCLIDeterminism:
    """``repro bench`` end to end: schema, digest stability, exit code."""

    def _run_bench(self, tmp_path, name, jobs):
        import json

        from repro.cli import main

        out = tmp_path / name
        assert main(["bench", "--quick", "--jobs", str(jobs),
                     "--seed", "1", "-o", str(out)]) == 0
        return json.loads(out.read_text())

    def test_bench_report_schema_and_digest(self, tmp_path):
        report = self._run_bench(tmp_path, "bench.json", jobs=2)
        assert report["kind"] == "repro-bench"
        assert report["format_version"] == 2
        assert report["quick"] is True
        assert report["jobs"] == 2
        assert set(report["host"]) == {"cpu_count", "platform", "python"}
        matrix = report["matrix"]
        assert matrix["cells"] == len(matrix["benchmarks"]) * \
            len(matrix["agents"]) * len(matrix["variant_counts"])
        assert report["serial"]["ok"] == matrix["cells"]
        assert report["serial"]["failed"] == 0
        assert report["parallel"]["ok"] == matrix["cells"]
        assert report["identical"] is True
        assert report["speedup"] == pytest.approx(
            report["serial"]["wall_s"] / report["parallel"]["wall_s"])
        assert (report["digest"]
                == TestParallelSweepDeterminism.GOLDEN_QUICK_DIGEST)
        # v2 additions: per-cell walls, first-cell profile, trajectory.
        assert len(report["serial"]["cell_wall_s"]) == matrix["cells"]
        profile = report["profile"]
        assert profile["benchmark"] == matrix["benchmarks"][0]
        assert profile["total_cycles"] == pytest.approx(
            sum(profile["per_category"].values()))
        assert report["trajectory"] == []

    def test_bench_serial_only_report(self, tmp_path):
        report = self._run_bench(tmp_path, "serial.json", jobs=1)
        assert report["parallel"] is None
        assert report["speedup"] is None
        assert report["identical"] is None
        assert (report["digest"]
                == TestParallelSweepDeterminism.GOLDEN_QUICK_DIGEST)


class TestReplayDeterminism:
    """The repro.replay contract: recording is a pure observer, and a
    sealed decision log re-drives the run bit-identically.

    The recorder and checkpointer ride the ``replay is not None`` hook
    and the watchdog event lane, so attaching them must not move a
    single simulated cycle; the replayer must then reproduce the exact
    verdict, cycle count, and observability digest from the log alone —
    with or without injected faults.
    """

    AGENTS = ["total_order", "partial_order", "wall_of_clocks"]
    CRASH = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))

    def _run(self, agent, faults=None, replay=None, checkpoints=None,
             obs=None, costs=None):
        return run_mvee(
            MutexCounterProgram(workers=3, iters=25),
            variants=3, agent=agent, seed=7, costs=costs,
            faults=faults,
            policy=(MonitorPolicy(degradation="quarantine")
                    if faults is not None else None),
            replay=replay, checkpoints=checkpoints, obs=obs)

    @pytest.mark.parametrize("agent", AGENTS)
    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["plain", "faulted"])
    def test_recorder_and_checkpointer_are_zero_cost(
            self, agent, faulted, fast_costs):
        from repro.replay import DecisionLog, DecisionRecorder

        faults = self.CRASH if faulted else None
        baseline = self._run(agent, faults=faults, costs=fast_costs)
        recorder = DecisionRecorder(DecisionLog(spec={}))
        observed = self._run(agent, faults=faults, costs=fast_costs,
                             replay=recorder, checkpoints=50_000.0)
        assert observed.verdict == baseline.verdict
        assert observed.cycles == baseline.cycles
        assert observed.stdout == baseline.stdout
        assert recorder.steps > 0
        assert len(recorder.log.records) > 0
        assert len(observed.monitor.checkpoints) > 0

    @pytest.mark.parametrize("agent", AGENTS)
    @pytest.mark.parametrize("faults", [None, "crash@v1:3"],
                             ids=["plain", "faulted"])
    def test_replay_from_log_is_bit_identical(self, agent, faults,
                                              tmp_path):
        from repro.replay import record_run, replay_run

        spec = {"workload": "nginx", "seed": 5, "agent": agent,
                "variants": 3, "faults": faults,
                "policy": "quarantine" if faults else "kill-all"}
        path = str(tmp_path / "run.decisions.jsonl")
        recorded = record_run(spec, out_path=path)
        replayed = replay_run(path)
        assert replayed.faithful
        assert replayed.replayer.first_divergence is None
        assert replayed.outcome.verdict == recorded.outcome.verdict
        assert replayed.outcome.cycles == recorded.outcome.cycles
        assert replayed.hub.digest() == recorded.hub.digest()
        # The log itself is stable: loading and re-digesting the file
        # reproduces the digest sealed into the footer.
        assert replayed.log.digest() == recorded.footer["digest"]

    def test_replay_reproduces_divergence_report(self, tmp_path):
        from repro.replay import record_run, replay_run

        # agent "none" removes cross-variant ordering, so the variants
        # interleave freely and the monitor flags a divergence; the
        # replay must reproduce the identical report.
        spec = {"workload": "dedup", "scale": 0.02, "agent": "none",
                "variants": 2, "seed": 7}
        path = str(tmp_path / "div.decisions.jsonl")
        recorded = record_run(spec, out_path=path)
        replayed = replay_run(path)
        assert replayed.faithful
        assert replayed.outcome.verdict == recorded.outcome.verdict
        assert (str(replayed.outcome.divergence)
                == str(recorded.outcome.divergence))
        assert replayed.hub.digest() == recorded.hub.digest()


class TestTelemetryZeroPerturbation:
    """Host telemetry is a pure observer: attaching span recording and
    an active trace context must not move one simulated cycle.

    ``repro.telemetry`` reads only host clocks and mints trace ids from
    ``os.urandom`` — nothing it does may touch the seeded guest RNG or
    the simulated clock.  This class pins that contract on both the
    single-run path (verdict, cycles, stdout, ObsHub digest) and the
    parallel sweep path (golden quick-matrix digest with traced cells).
    """

    def _mvee(self, fast_costs):
        hub = ObsHub()
        outcome = run_mvee(MutexCounterProgram(workers=3, iters=25),
                           variants=3, agent="total_order", seed=7,
                           costs=fast_costs, obs=hub)
        return outcome, hub

    def test_traced_mvee_identical_to_bare_run(self, fast_costs,
                                               tmp_path):
        from repro.telemetry.spans import read_spans, scoped, span

        bare, bare_hub = self._mvee(fast_costs)
        with scoped(str(tmp_path), service="test"):
            with span("test.mvee", track="test"):
                traced, traced_hub = self._mvee(fast_costs)
            recorded = read_spans(str(tmp_path))
        assert recorded and recorded[-1]["name"] == "test.mvee"
        assert traced.verdict == bare.verdict == "clean"
        assert traced.cycles == bare.cycles
        assert traced.stdout == bare.stdout
        assert traced_hub.digest() == bare_hub.digest()

    def test_traced_sweep_matches_golden_digest(self, tmp_path):
        """CellTasks carrying a trace context through the parallel
        engine leave the pinned sweep digest untouched, while the
        workers really do record host spans."""
        import dataclasses

        from repro.experiments.runner import reset_caches
        from repro.par.bench import (bench_tasks, build_matrix,
                                     canonical_cells, digest_of)
        from repro.par.engine import run_cells
        from repro.telemetry.context import new_context
        from repro.telemetry.spans import read_spans, scoped

        reset_caches()
        ctx = new_context()
        tasks = [dataclasses.replace(task, trace=ctx.to_dict())
                 for task in bench_tasks(build_matrix(quick=True,
                                                      seed=1))]
        with scoped(str(tmp_path), service="worker"):
            results = run_cells(tasks, jobs=2, env="thread")
            recorded = read_spans(str(tmp_path))
        assert len(recorded) == len(tasks)
        assert {r["trace"] for r in recorded} == {ctx.trace_id}
        assert (digest_of(canonical_cells(results))
                == TestParallelSweepDeterminism.GOLDEN_QUICK_DIGEST)
