"""Whole-system determinism: identical seeds give identical runs.

Everything in the simulation — scheduling, jitter, diversity layouts,
workload patterns — derives from explicit seeds, so repeated runs must
agree to the cycle.  This is what makes every other test in the suite
meaningful, and what a debugging session on an MVEE trace depends on.
"""

import pytest

from repro.core.divergence import MonitorPolicy
from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.faults import FaultPlan, FaultSpec
from repro.obs import ObsHub
from repro.run import run_native
from repro.workloads.synthetic import make_benchmark
from tests.guestlib import (
    CounterProgram,
    MutexCounterProgram,
    ProducerConsumerProgram,
)


class TestNativeDeterminism:
    @pytest.mark.parametrize("program_factory", [
        lambda: CounterProgram(workers=4, iters=50),
        lambda: ProducerConsumerProgram(),
        lambda: make_benchmark("barnes", scale=0.05),
        lambda: make_benchmark("dedup", scale=0.05),
    ])
    def test_repeat_runs_identical(self, program_factory):
        first = run_native(program_factory(), seed=11)
        second = run_native(program_factory(), seed=11)
        assert first.report.cycles == second.report.cycles
        assert first.stdout == second.stdout
        assert first.report.total_sync_ops == second.report.total_sync_ops


class TestMVEEDeterminism:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_repeat_mvee_runs_identical(self, agent, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=3, iters=40),
                            variants=2, agent=agent, seed=9,
                            costs=fast_costs,
                            diversity=DiversitySpec(aslr=True, seed=4))

        first, second = once(), once()
        assert first.verdict == second.verdict == "clean"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout

    def test_divergence_reports_reproducible(self, fast_costs):
        def once():
            return run_mvee(CounterProgram(workers=4, iters=150),
                            variants=2, agent=None, seed=7,
                            costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict == "divergence"
        assert str(first.divergence) == str(second.divergence)

    def test_different_seeds_differ_somewhere(self, fast_costs):
        cycles = {run_mvee(CounterProgram(workers=3, iters=40),
                           variants=2, agent="wall_of_clocks",
                           seed=seed, costs=fast_costs).cycles
                  for seed in range(4)}
        assert len(cycles) > 1


class TestFaultDeterminism:
    """Fault injection composes with seeded scheduling: the same
    ``(plan, seed)`` pair reproduces the same faults at the same cycles,
    and a disabled injector leaves the timeline byte-identical."""

    def _run(self, faults=None, policy=None, obs=None, costs=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, seed=7, costs=costs,
                        faults=faults, policy=policy, obs=obs)

    def test_same_fault_plan_reproduces_run_exactly(self, fast_costs):
        plan = FaultPlan((FaultSpec(kind="crash", variant=1, at=4),))

        def once():
            hub = ObsHub()
            outcome = self._run(
                faults=plan,
                policy=MonitorPolicy(degradation="quarantine"),
                obs=hub, costs=fast_costs)
            return outcome, hub

        (first, first_hub), (second, second_hub) = once(), once()
        assert first.verdict == second.verdict == "degraded"
        assert first.cycles == second.cycles
        assert first.stdout == second.stdout
        assert ([f.to_dict() for f in first.faults]
                == [f.to_dict() for f in second.faults])
        first_trace = [e.to_dict() for v in first_hub.tracer.variants()
                       for e in first_hub.tracer.tail(v)]
        second_trace = [e.to_dict() for v in second_hub.tracer.variants()
                        for e in second_hub.tracer.tail(v)]
        assert first_trace == second_trace

    def test_random_plan_reproducible_by_seed(self, fast_costs):
        def once():
            return self._run(
                faults=FaultPlan.random(5, n_variants=3),
                policy=MonitorPolicy(degradation="quarantine",
                                     watchdog_cycles=400_000.0),
                costs=fast_costs)

        first, second = once(), once()
        assert first.verdict == second.verdict
        assert first.cycles == second.cycles
        assert ([f.to_dict() for f in first.faults]
                == [f.to_dict() for f in second.faults])

    def test_fault_machinery_disabled_is_zero_cost(self, fast_costs):
        """No plan, an empty plan, an armed watchdog that never fires,
        and a degradation policy that never triggers must all produce the
        exact cycle count of the plain run."""
        baseline = self._run(costs=fast_costs)
        assert baseline.verdict == "clean"
        variants = [
            self._run(faults=FaultPlan(), costs=fast_costs),
            self._run(policy=MonitorPolicy(
                watchdog_cycles=1e9), costs=fast_costs),
            self._run(policy=MonitorPolicy(degradation="quarantine"),
                      costs=fast_costs),
            self._run(policy=MonitorPolicy(degradation="restart"),
                      costs=fast_costs),
        ]
        for outcome in variants:
            assert outcome.verdict == "clean"
            assert outcome.cycles == baseline.cycles
            assert outcome.stdout == baseline.stdout

    def test_disabled_faults_leave_obs_trace_identical(self, fast_costs):
        def trace_of(**kwargs):
            hub = ObsHub()
            outcome = self._run(obs=hub, costs=fast_costs, **kwargs)
            assert outcome.verdict == "clean"
            return [e.to_dict() for v in hub.tracer.variants()
                    for e in hub.tracer.tail(v)]

        assert trace_of() == trace_of(faults=FaultPlan())


class TestRaceDetectorDeterminism:
    """The race detector is an observer: attaching it must not move a
    single simulated cycle, and detaching it must cost nothing."""

    def _run(self, races=None, obs=None, costs=None):
        return run_mvee(MutexCounterProgram(workers=3, iters=25),
                        variants=3, seed=7, costs=costs, races=races,
                        obs=obs)

    def test_detector_attached_is_zero_cost(self, fast_costs):
        from repro.races import RaceDetector

        baseline = self._run(costs=fast_costs)
        assert baseline.verdict == "clean"
        detected = self._run(races=RaceDetector(), costs=fast_costs)
        assert detected.verdict == "clean"
        assert detected.cycles == baseline.cycles
        assert detected.stdout == baseline.stdout

    def test_detector_leaves_obs_trace_identical(self, fast_costs):
        from repro.races import RaceDetector

        def trace_of(**kwargs):
            hub = ObsHub()
            outcome = self._run(obs=hub, costs=fast_costs, **kwargs)
            assert outcome.verdict == "clean"
            return [e.to_dict() for v in hub.tracer.variants()
                    for e in hub.tracer.tail(v)]

        assert trace_of() == trace_of(races=RaceDetector())

    def test_race_report_reproducible(self, fast_costs):
        from repro.races import RaceDetector

        def report_of():
            detector = RaceDetector(sync_sites=lambda site: False)
            outcome = self._run(races=detector, costs=fast_costs)
            return outcome, detector.report

        (first, first_report), (second, second_report) = \
            report_of(), report_of()
        assert first.cycles == second.cycles
        assert ([r.to_dict() for r in first_report.races]
                == [r.to_dict() for r in second_report.races])
        assert first_report.occurrences == second_report.occurrences

    def test_racy_classification_still_zero_cost(self, fast_costs):
        """Even when every op is race-checked (the expensive path), the
        simulated timeline must not move."""
        from repro.races import RaceDetector

        baseline = self._run(costs=fast_costs)
        detected = self._run(
            races=RaceDetector(sync_sites=lambda site: False),
            costs=fast_costs)
        assert detected.cycles == baseline.cycles
        assert detected.stdout == baseline.stdout
