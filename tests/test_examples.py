"""Smoke tests: the example scripts run end to end.

Only the fast examples run here (the sweep example is exercised by the
figure benches); each is executed in-process via runpy with stdout
captured.
"""

import pathlib
import runpy


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "verdict: divergence" in out
        assert out.count("verdict: clean") >= 3
        assert "wall-of-clocks" in out

    def test_covert_channel_demo(self, capsys):
        out = run_example("covert_channel_demo.py", capsys)
        assert "verdict: clean" in out
        assert "decoded" in out

    def test_static_analysis_pipeline(self, capsys):
        out = run_example("static_analysis_pipeline.py", capsys)
        assert "stage 2 added 1 type (iii) accesses" in out
        assert "clean" in out

    def test_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.lstrip().startswith(('#!/usr/bin/env python3')), \
                script.name
            assert '"""' in text, script.name
