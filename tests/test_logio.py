"""repro.logio: the torn-tail-tolerant JSONL reader both the serve
registry journal and the decision log load through.

A crash mid-append leaves at worst one unparseable (or unterminated)
final line; that torn tail must be dropped silently by both consumers,
while interior corruption is skippable (journal) or fatal (decision
log) by the caller's choice.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReplayError
from repro.logio import JsonlCorruption, append_jsonl, read_jsonl


def _write(path, lines, terminate_last=True):
    with open(path, "w") as handle:
        for index, line in enumerate(lines):
            handle.write(line)
            if terminate_last or index < len(lines) - 1:
                handle.write("\n")
    return str(path)


class TestReadJsonl:
    def test_reads_records_in_order(self, tmp_path):
        path = _write(tmp_path / "a.jsonl",
                      [json.dumps({"n": i}) for i in range(5)])
        page = read_jsonl(path)
        assert [r["n"] for r in page.records] == list(range(5))
        assert page.skipped == 0
        assert not page.torn_tail

    def test_missing_file_raises_typed_error(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            read_jsonl(str(tmp_path / "nope.jsonl"))

    def test_torn_final_line_dropped(self, tmp_path):
        path = _write(tmp_path / "t.jsonl",
                      [json.dumps({"n": 0}), '{"n": 1, "x"'])
        page = read_jsonl(path, on_bad="error")
        assert [r["n"] for r in page.records] == [0]
        assert page.torn_tail

    def test_unterminated_final_line_dropped(self, tmp_path):
        # Even a *parseable* final line without its newline is treated
        # as torn: the crash may have interrupted the payload itself.
        path = _write(tmp_path / "u.jsonl",
                      [json.dumps({"n": 0}), json.dumps({"n": 1})],
                      terminate_last=False)
        page = read_jsonl(path, on_bad="error")
        assert [r["n"] for r in page.records] == [0]
        assert page.torn_tail

    def test_interior_junk_skipped_or_fatal(self, tmp_path):
        path = _write(tmp_path / "j.jsonl",
                      [json.dumps({"n": 0}), "junk{{{",
                       json.dumps({"n": 2})])
        page = read_jsonl(path, on_bad="skip")
        assert [r["n"] for r in page.records] == [0, 2]
        assert page.skipped == 1
        with pytest.raises(JsonlCorruption):
            read_jsonl(path, on_bad="error")

    def test_append_round_trips(self, tmp_path):
        path = str(tmp_path / "ap.jsonl")
        with open(path, "w") as handle:
            for i in range(3):
                append_jsonl(handle, {"n": i})
        assert [r["n"] for r in read_jsonl(path).records] == [0, 1, 2]


class TestConsumers:
    """Both shared-reader consumers survive the same torn tail."""

    def test_registry_journal_survives_torn_tail(self, tmp_path):
        from repro.serve.registry import SessionRegistry
        from repro.serve.session import SessionSpec

        state = tmp_path / "state"
        registry = SessionRegistry(state_dir=str(state))
        spec = SessionSpec.from_dict(
            {"workload": "nginx", "seed": 5}).validate()
        session = registry.create(spec)
        registry.shutdown()
        journal = state / "registry.jsonl"
        with open(journal, "a") as handle:
            handle.write('{"event": "state", "id": "' + session.id)
        recovered = SessionRegistry(state_dir=str(state))
        assert session.id in recovered.sessions
        assert recovered.sessions[session.id].state == "created"
        recovered.shutdown()

    def test_decision_log_survives_torn_tail(self, tmp_path):
        from repro.replay import DecisionLog

        log = DecisionLog(spec={"workload": "nginx", "seed": 5})
        log.append({"k": "rng", "m": "randrange", "v": 3, "i": 0})
        log.append({"k": "rng", "m": "random", "v": 0.5, "i": 1})
        path = str(tmp_path / "run.decisions.jsonl")
        log.write(path)
        with open(path, "a") as handle:
            handle.write('{"k": "sync", "t": "mai')
        loaded = DecisionLog.load(path)
        assert loaded.records == log.records
        assert loaded.digest() == log.digest()

    def test_decision_log_interior_corruption_fatal(self, tmp_path):
        from repro.replay import DecisionLog

        log = DecisionLog(spec={"workload": "nginx", "seed": 5})
        log.append({"k": "rng", "m": "randrange", "v": 3, "i": 0})
        path = str(tmp_path / "bad.decisions.jsonl")
        log.write(path)
        lines = open(path).read().splitlines()
        lines.insert(1, "corrupt!!!")
        _write(tmp_path / "bad.decisions.jsonl", lines)
        with pytest.raises(ReplayError):
            DecisionLog.load(path)
