"""Edge-path tests across modules (error formats, small helpers)."""

import pytest

from repro.core.divergence import DivergenceKind, DivergenceReport
from repro.errors import (
    DeadlockError,
    DivergenceError,
    GuestFault,
    SyscallError,
)
from repro.kernel.net import Network
from repro.sched.vm import TraceEntry


class TestErrorTypes:
    def test_guest_fault_carries_location(self):
        fault = GuestFault("boom", variant=1, thread="main/2")
        assert fault.variant == 1 and fault.thread == "main/2"

    def test_syscall_error_default_errno(self):
        assert SyscallError("x").errno_name == "EINVAL"

    def test_deadlock_error_blocked_list(self):
        err = DeadlockError("stuck", blocked=["a", "b"])
        assert err.blocked == ["a", "b"]

    def test_divergence_error_wraps_report(self):
        report = DivergenceReport(
            kind=DivergenceKind.SYSCALL_MISMATCH, thread="main",
            syscall_seq=3, detail="args differ",
            observations={0: ("write", (1, "a")), 1: ("write", (1, "b"))})
        err = DivergenceError(report)
        assert err.report is report
        text = str(err)
        assert "syscall_mismatch" in text
        assert "thread=main" in text and "seq=3" in text
        assert "v0" in text and "v1" in text


class TestTraceEntry:
    def test_key_excludes_result_and_time(self):
        first = TraceEntry(thread="t", kind="syscall", name="write",
                           detail=(1, "x"), result=1, time=5.0)
        second = TraceEntry(thread="t", kind="syscall", name="write",
                            detail=(1, "x"), result=2, time=9.0)
        assert first.key() == second.key()


class TestNetworkEdges:
    def test_send_after_client_close_is_epipe(self):
        net = Network()
        net.listen(80)
        conn = net.client_connect(80)
        net.client_close(conn)
        with pytest.raises(SyscallError) as excinfo:
            net.server_send(conn, b"late")
        assert excinfo.value.errno_name == "EPIPE"

    def test_client_recv_eof_after_server_close(self):
        net = Network()
        net.listen(80)
        conn = net.client_connect(80)
        net.server_close(conn)
        assert net.client_recv(conn) == b""

    def test_double_listen_rejected(self):
        net = Network()
        net.listen(80)
        with pytest.raises(SyscallError):
            net.listen(80)

    def test_connect_refused_without_listener(self):
        with pytest.raises(SyscallError):
            Network().client_connect(9999)

    def test_unknown_connection_rejected(self):
        with pytest.raises(SyscallError):
            Network().server_recv(42, 10)


class TestGuestLibcEdges:
    def test_free_is_lock_round_trip(self):
        from repro.guest.libc import GuestLibc
        from repro.guest.program import GuestProgram
        from repro.run import run_native

        class P(GuestProgram):
            def main(self, ctx):
                libc = yield from GuestLibc.setup(ctx)
                block = yield from libc.malloc(ctx, 16)
                yield from libc.free(ctx, block)
                return "freed"

        result = run_native(P(), seed=0)
        assert result.vm.threads["main"].result == "freed"
        assert result.report.total_sync_ops >= 4  # two lock round trips

    def test_fprintf_writes_to_fd(self):
        from repro.guest.libc import GuestLibc
        from repro.guest.program import GuestProgram
        from repro.run import run_native

        class P(GuestProgram):
            def main(self, ctx):
                libc = yield from GuestLibc.setup(ctx)
                yield from libc.fprintf(ctx, 2, "oops\n")

        result = run_native(P(), seed=0)
        assert result.disk.stream_text("stderr") == "oops\n"


class TestAgentSiteChecks:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_check_sites_flags_mismatched_programs(self, agent,
                                                   fast_costs):
        """With check_sites on, a program whose variants execute
        different sync sites (role-dependent!) trips the debugging
        check instead of wedging silently."""
        from repro.core.mvee import MVEE
        from repro.guest.program import GuestProgram

        class RoleDependent(GuestProgram):
            static_vars = ("a", "b")

            def main(self, ctx):
                role = yield from ctx.mvee_get_role()
                # Different *sites* per variant: diversity that changes
                # synchronization behaviour (§4.5.1: unsupported).
                if role == 0:
                    yield from ctx.fetch_add(ctx.static_addr("a"), 1,
                                             site="app.master.xadd")
                else:
                    yield from ctx.fetch_add(ctx.static_addr("b"), 1,
                                             site="app.slave.xadd")
                yield from ctx.printf("done\n")

        mvee = MVEE(RoleDependent(), variants=2, agent=agent, seed=1,
                    costs=fast_costs, max_cycles=1e9)
        mvee.agent_shared.check_sites = True
        with pytest.raises(RuntimeError, match="replay mismatch"):
            mvee.run()


class TestRecPlayEdges:
    def test_replay_agent_detects_log_overrun(self):
        from repro.baselines.recplay import SyncLog, replay_execution
        from tests.guestlib import ScheduleWitnessProgram

        empty = SyncLog()
        with pytest.raises(RuntimeError, match="ran past the log"):
            replay_execution(ScheduleWitnessProgram(workers=2, iters=2),
                             empty, seed=0)


class TestDivergenceExplain:
    def test_explain_covers_all_kinds(self):
        for kind in DivergenceKind:
            report = DivergenceReport(kind=kind, thread="main",
                                      syscall_seq=1, detail="d",
                                      observations={0: "x", 1: "y"})
            text = report.explain()
            assert "logical thread : main" in text
            assert "variant 0" in text and "variant 1" in text

    def test_cli_prints_explanation(self, capsys):
        from repro.cli import main
        code = main(["run", "radiosity", "--agent", "none",
                     "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "logical thread" in out
