"""Sweep sanity: every one of the 25 benchmark twins runs natively and
under the MVEE (WoC), completing with the expected structure."""

import pytest

from repro.core.mvee import run_mvee
from repro.run import run_native
from repro.workloads.spec import ALL_SPECS
from repro.workloads.synthetic import make_benchmark


@pytest.mark.parametrize("name", sorted(ALL_SPECS))
def test_twin_runs_natively(name):
    result = run_native(make_benchmark(name, scale=0.05), seed=3)
    assert f"{name}: digest=" in result.stdout
    spec = ALL_SPECS[name]
    if spec.sync_rate_k > 100:  # tiny scales may round low rates to 0
        assert result.report.total_sync_ops > 0
    assert result.report.total_syscalls >= 1


@pytest.mark.parametrize("name", sorted(ALL_SPECS))
def test_twin_clean_under_woc(name, fast_costs):
    outcome = run_mvee(make_benchmark(name, scale=0.05), variants=2,
                       agent="wall_of_clocks", seed=3, costs=fast_costs)
    assert outcome.verdict == "clean"
    # The digest write happened exactly once (output deduplication).
    assert outcome.stdout.count(f"{name}: digest=") == 1
