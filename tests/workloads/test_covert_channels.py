"""Covert-channel PoCs of Section 5.4.

The point of both channels: a malicious program can move variant-private
data (randomized pointer bits) from the master to the slaves *through the
replication machinery itself*, and then emit it identically in all
variants — so the monitor sees no divergence while the secret leaves the
system.
"""

import pytest

from repro.core.mvee import run_mvee
from repro.diversity.spec import DiversitySpec
from repro.workloads.attacks import TimingCovertChannel, TrylockCovertChannel

ASLR = DiversitySpec(aslr=True, seed=23)

#: ASLR seed under which the two variants' role hashes differ (the
#: paper's "probabilistic" role election succeeding).
ASLR_ROLE_SPLIT = DiversitySpec(aslr=True, seed=2)


class TestTimingChannel:
    def test_bidirectional_pointer_exchange(self, fast_costs):
        """Both variants end up holding *both* variants' randomized
        secrets — exactly the §5.4 exchange."""
        outcome = run_mvee(TimingCovertChannel(), variants=2, agent=None,
                           seed=5, costs=fast_costs,
                           diversity=ASLR_ROLE_SPLIT)
        assert outcome.verdict == "clean", (
            "the leak must not be detectable as divergence")
        first = outcome.vms[0].threads["main"].result
        second = outcome.vms[1].threads["main"].result
        assert first["my_secret"] != second["my_secret"]
        assert first["my_role"] != second["my_role"]
        sender1 = first if first["my_role"] == 1 else second
        sender0 = first if first["my_role"] == 0 else second
        # Both variants decoded identical streams, carrying each role's
        # variant-private bits.
        assert first["streams"] == second["streams"]
        assert first["streams"][1] == sender1["my_secret"]
        assert first["streams"][0] == sender0["my_secret"]

    def test_rdtsc_variant_also_leaks(self, fast_costs):
        """The paper names rdtsc alongside gettimeofday: its replicated
        ticks form the same channel."""
        outcome = run_mvee(TimingCovertChannel(clock="rdtsc"),
                           variants=2, agent=None, seed=5,
                           costs=fast_costs, diversity=ASLR_ROLE_SPLIT)
        assert outcome.verdict == "clean"
        first = outcome.vms[0].threads["main"].result
        second = outcome.vms[1].threads["main"].result
        sender1 = first if first["my_role"] == 1 else second
        assert first["streams"] == second["streams"]
        assert first["streams"][1] == sender1["my_secret"]

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError):
            TimingCovertChannel(clock="sundial")

    def test_leak_reaches_stdout_without_divergence(self, fast_costs):
        outcome = run_mvee(TimingCovertChannel(), variants=2, agent=None,
                           seed=6, costs=fast_costs,
                           diversity=ASLR_ROLE_SPLIT)
        assert outcome.verdict == "clean"
        streams = outcome.vms[0].threads["main"].result["streams"]
        assert (f"leak_role1={streams[1]:#04x}" in outcome.stdout)


class TestTrylockChannel:
    @pytest.mark.parametrize("agent", ["total_order", "partial_order",
                                       "wall_of_clocks"])
    def test_trylock_pattern_replicated(self, agent, fast_costs):
        """The agents replay the trylock CAS results, so the slave's
        receiver observes the master's secret-dependent pattern."""
        outcome = run_mvee(TrylockCovertChannel(), variants=2,
                           agent=agent, seed=7, costs=fast_costs,
                           diversity=ASLR)
        assert outcome.verdict == "clean"
        master = outcome.vms[0].threads["main"].result
        slave = outcome.vms[1].threads["main"].result
        assert master["my_secret"] != slave["my_secret"]
        assert slave["decoded"] == master["decoded"], (
            "replication must propagate the master's pattern verbatim")
        assert slave["decoded"] == master["my_secret"], (
            "the channel must actually transmit the master's bits")

    def test_channel_requires_timing_correlation(self, fast_costs):
        """Sanity: natively (single instance) the receiver decodes its
        own sender's bits — the encoding itself works."""
        from repro.run import run_native
        result = run_native(TrylockCovertChannel(), seed=8)
        outcome = result.vm.threads["main"].result
        assert outcome["decoded"] == outcome["my_secret"]
