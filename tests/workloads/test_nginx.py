"""The nginx use case (Section 5.5): divergence without instrumentation,
clean runs with it, attack detection, throughput."""


from repro.core.mvee import MVEE
from repro.diversity.spec import DiversitySpec
from repro.run import run_native
from repro.workloads.attacks import exploit_payload
from repro.workloads.nginx import (
    NginxConfig,
    NginxServer,
    TrafficStats,
    make_traffic,
    pthread_only_sites,
)


def small_config(**overrides) -> NginxConfig:
    defaults = dict(pool_threads=8, connections=6,
                    requests_per_connection=3, work_cycles=20_000.0)
    defaults.update(overrides)
    return NginxConfig(**defaults)


def run_server_native(config, latency_s=0.0, seed=1):
    stats = TrafficStats()
    from repro.kernel.net import Network
    network = Network()
    result = run_native(NginxServer(config), seed=seed, network=network,
                        traffic=make_traffic(config, latency_s, stats))
    return result, stats


def run_server_mvee(config, latency_s=0.0, seed=1, variants=2,
                    instrument=None, diversity=None, costs=None,
                    max_cycles=None):
    stats = TrafficStats()
    mvee = MVEE(NginxServer(config), variants=variants,
                agent="wall_of_clocks", seed=seed, costs=costs,
                instrument=(instrument if instrument is not None
                            else (lambda site: True)),
                diversity=diversity, with_network=True,
                traffic=make_traffic(config, latency_s, stats),
                max_cycles=max_cycles)
    return mvee.run(), stats


class TestNativeServer:
    def test_serves_all_requests(self):
        config = small_config()
        result, stats = run_server_native(config)
        expected = config.connections * config.requests_per_connection
        assert stats.responses == expected
        assert f"served {expected} requests" in result.stdout

    def test_throughput_positive(self):
        config = small_config()
        _, stats = run_server_native(config)
        assert stats.throughput_rps() > 0

    def test_network_latency_reduces_throughput(self):
        config = small_config()
        _, fast = run_server_native(config, latency_s=0.0)
        _, slow = run_server_native(config, latency_s=0.000_5)
        assert slow.throughput_rps() < fast.throughput_rps()


class TestMVEEServer:
    def test_uninstrumented_custom_sync_diverges(self, fast_costs):
        """The paper's observation: without instrumenting nginx's own
        primitives, 'the server does start up normally, but quickly
        triggers a divergence when network traffic starts flowing in'."""
        outcome, _ = run_server_mvee(small_config(), costs=fast_costs,
                                     instrument=pthread_only_sites,
                                     max_cycles=5e9)
        assert outcome.verdict != "clean"

    def test_fully_instrumented_runs_clean(self, fast_costs):
        config = small_config()
        outcome, stats = run_server_mvee(config, costs=fast_costs)
        assert outcome.verdict == "clean"
        expected = config.connections * config.requests_per_connection
        assert stats.responses == expected

    def test_clean_under_aslr_and_dcl(self, fast_costs):
        """Section 5.5 runs with ASLR + DCL (+PIE) enabled."""
        outcome, stats = run_server_mvee(
            small_config(), costs=fast_costs,
            diversity=DiversitySpec(aslr=True, dcl=True, seed=11))
        assert outcome.verdict == "clean"
        assert stats.responses > 0

    def test_responses_served_once(self, fast_costs):
        """Two variants, each 'sends' responses — the client must see
        each response exactly once (output deduplication)."""
        config = small_config()
        _, native_stats = run_server_native(config)
        outcome, mvee_stats = run_server_mvee(config, costs=fast_costs)
        assert outcome.verdict == "clean"
        assert mvee_stats.bytes_received == native_stats.bytes_received


class TestAttackDetection:
    def _attack_config(self):
        return small_config(vulnerable=True, connections=4,
                            requests_per_connection=2)

    def test_attack_succeeds_natively(self):
        """Baseline: against an unprotected server the exploit reaches
        execve (the attacker's shell)."""
        from repro.kernel.vmem import LayoutBases
        config = self._attack_config()
        stats = TrafficStats()
        from repro.kernel.net import Network
        network = Network()
        payload = exploit_payload(LayoutBases())  # native layout
        result = run_native(
            NginxServer(config), seed=1, network=network,
            traffic=make_traffic(config, 0.0, stats,
                                 exploit_payload=payload))
        assert result.vm.kernel.exec_log, "exploit should have spawned a shell"

    def test_attack_detected_by_mvee(self, fast_costs):
        """Under the MVEE with DCL, the payload tailored to variant 0
        faults in variant 1; divergence is detected and no variant ever
        completes the execve."""
        from repro.diversity.spec import layouts_for
        config = self._attack_config()
        diversity = DiversitySpec(aslr=True, dcl=True, seed=11)
        victim_layout = layouts_for(diversity, 2)[0]
        stats = TrafficStats()
        mvee = MVEE(NginxServer(config), variants=2,
                    agent="wall_of_clocks", seed=1, costs=fast_costs,
                    diversity=diversity, with_network=True,
                    traffic=make_traffic(
                        config, 0.0, stats,
                        exploit_payload=exploit_payload(victim_layout)),
                    max_cycles=5e9)
        outcome = mvee.run()
        assert outcome.verdict == "divergence"
        assert not any(vm.kernel.exec_log for vm in outcome.vms), (
            "the MVEE must kill the variants before any execve completes")
