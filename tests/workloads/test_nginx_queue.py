"""Unit tests for nginx's custom connection queue and spinlock."""


from repro.guest.program import GuestProgram
from repro.run import run_native
from repro.workloads.nginx import NginxConnQueue, NginxCustomLock


class TestNginxCustomLock:
    def test_mutual_exclusion(self):
        class P(GuestProgram):
            static_vars = ("lk", "x")

            def main(self, ctx):
                lock = NginxCustomLock(ctx.static_addr("lk"))
                tids = yield from ctx.spawn_all(
                    self.worker, [(lock,) for _ in range(4)])
                yield from ctx.join_all(tids)
                return ctx.mem_load(ctx.static_addr("x"))

            def worker(self, ctx, lock):
                for _ in range(30):
                    yield from ctx.compute(300)
                    yield from lock.acquire(ctx)
                    addr = ctx.static_addr("x")
                    ctx.mem_store(addr, ctx.mem_load(addr) + 1)
                    yield from lock.release(ctx)

        result = run_native(P(), seed=2)
        assert result.vm.threads["main"].result == 120

    def test_sites_are_custom_namespaced(self):
        assert NginxCustomLock.SITE_LOCK.startswith("nginx.")
        assert NginxCustomLock.SITE_UNLOCK.startswith("nginx.")


class TestNginxConnQueue:
    def test_fifo_over_threads(self):
        class P(GuestProgram):
            def main(self, ctx):
                queue = NginxConnQueue(ctx, capacity=8)
                consumer = yield from ctx.spawn(self.consumer, queue)
                for value in range(10):
                    yield from queue.push(ctx, value)
                yield from queue.push(ctx, -1)
                drained = yield from ctx.join(consumer)
                return drained

            def consumer(self, ctx, queue):
                drained = []
                while True:
                    value = yield from queue.pop(ctx)
                    if value == -1:
                        return drained
                    drained.append(value)

        result = run_native(P(), seed=4)
        assert result.vm.threads["main"].result == list(range(10))

    def test_capacity_backpressure(self):
        """A full queue blocks the pusher until a pop frees a slot."""

        class P(GuestProgram):
            def main(self, ctx):
                queue = NginxConnQueue(ctx, capacity=2)
                consumer = yield from ctx.spawn(self.slow_consumer,
                                                queue)
                for value in range(6):
                    yield from queue.push(ctx, value)
                yield from queue.push(ctx, -1)
                return (yield from ctx.join(consumer))

            def slow_consumer(self, ctx, queue):
                drained = []
                while True:
                    yield from ctx.compute(5_000)
                    value = yield from queue.pop(ctx)
                    if value == -1:
                        return drained
                    drained.append(value)

        result = run_native(P(), seed=4)
        assert result.vm.threads["main"].result == list(range(6))

    def test_multiple_consumers_partition_values(self):
        class P(GuestProgram):
            def main(self, ctx):
                queue = NginxConnQueue(ctx, capacity=16)
                consumers = yield from ctx.spawn_all(
                    self.consumer, [(queue,) for _ in range(3)])
                for value in range(30):
                    yield from queue.push(ctx, value)
                for _ in range(3):
                    yield from queue.push(ctx, -1)
                batches = yield from ctx.join_all(consumers)
                merged = sorted(v for batch in batches for v in batch)
                return merged

            def consumer(self, ctx, queue):
                drained = []
                while True:
                    value = yield from queue.pop(ctx)
                    if value == -1:
                        return drained
                    drained.append(value)
                    yield from ctx.compute(400)

        result = run_native(P(), seed=5)
        assert result.vm.threads["main"].result == list(range(30))
