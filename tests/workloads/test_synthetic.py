"""Tests for the benchmark twins: rates, topologies, MVEE compatibility."""

import pytest

from repro.run import run_native
from repro.workloads.spec import (
    ALL_SPECS,
    PARSEC_SPECS,
    SPLASH_SPECS,
    plan_slice,
    spec_by_name,
)
from repro.workloads.synthetic import make_benchmark


class TestSpecs:
    def test_suite_sizes_match_paper(self):
        """12 PARSEC (canneal excluded) + 13 SPLASH (cholesky excluded)."""
        assert len(PARSEC_SPECS) == 12
        assert len(SPLASH_SPECS) == 13

    def test_four_worker_threads(self):
        assert all(spec.workers == 4 for spec in ALL_SPECS.values())

    def test_pipeline_thread_formulas(self):
        """dedup runs 3n threads, ferret 2+4n, vips 2+n (footnote 8)."""
        assert spec_by_name("dedup").total_threads == 12
        assert spec_by_name("ferret").total_threads == 18
        assert spec_by_name("vips").total_threads == 6

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            spec_by_name("doom3")

    def test_plan_respects_budget(self):
        for spec in ALL_SPECS.values():
            plan = plan_slice(spec, scale=0.5)
            assert plan.sync_ops_total <= 5_000
            assert plan.duration_s <= spec.native_runtime_s

    def test_scale_shrinks_budget(self):
        spec = spec_by_name("radiosity")
        small = plan_slice(spec, scale=0.1)
        large = plan_slice(spec, scale=1.0)
        assert small.sync_ops_total < large.sync_ops_total


class TestRateFidelity:
    @pytest.mark.parametrize("name", ["dedup", "radiosity", "bodytrack",
                                      "streamcluster", "water_spatial"])
    def test_rates_within_factor_five(self, name):
        """The twin's measured rates stay within 5x of Table 2 at bench
        scale (character preservation; EXPERIMENTS.md has the numbers)."""
        spec = spec_by_name(name)
        result = run_native(make_benchmark(name, scale=0.5), seed=1)
        seconds = result.report.seconds
        if spec.sync_rate_k > 1:
            sync_rate = result.report.total_sync_ops / seconds / 1000
            assert spec.sync_rate_k / 5 < sync_rate < spec.sync_rate_k * 5
        if spec.syscall_rate_k > 10:
            sys_rate = result.report.total_syscalls / seconds / 1000
            assert (spec.syscall_rate_k / 5 < sys_rate
                    < spec.syscall_rate_k * 5)

    def test_rate_ranking_preserved(self):
        """radiosity must remain the most sync-intensive benchmark and
        water_spatial/dedup the most syscall-intensive (Table 2 ranks)."""
        rates = {}
        for name in ["radiosity", "dedup", "blackscholes",
                     "water_spatial"]:
            result = run_native(make_benchmark(name, scale=0.2), seed=1)
            seconds = result.report.seconds
            rates[name] = (result.report.total_syscalls / seconds,
                           result.report.total_sync_ops / seconds)
        assert rates["radiosity"][1] > rates["dedup"][1]
        assert rates["dedup"][1] > rates["blackscholes"][1]
        assert rates["water_spatial"][0] > rates["blackscholes"][0]


class TestTopologies:
    @pytest.mark.parametrize("name", ["bodytrack", "fft", "dedup",
                                      "freqmine"])
    def test_each_topology_completes_natively(self, name):
        result = run_native(make_benchmark(name, scale=0.1), seed=2)
        assert f"{name}: digest=" in result.stdout

    def test_pipeline_spawns_expected_threads(self):
        result = run_native(make_benchmark("dedup", scale=0.1), seed=2)
        # 12 pipeline threads + main
        assert len(result.vm.threads) == 13

    def test_program_is_deterministic_across_instances(self):
        """Two instances of the same twin behave identically under the
        same seed (precondition for multi-variant execution)."""
        first = run_native(make_benchmark("barnes", scale=0.1), seed=3)
        second = run_native(make_benchmark("barnes", scale=0.1), seed=3)
        assert first.stdout == second.stdout


class TestUnderMVEE:
    @pytest.mark.parametrize("name", ["bodytrack", "dedup", "fft",
                                      "freqmine", "swaptions"])
    def test_clean_under_woc(self, name, fast_costs):
        from repro.core.mvee import run_mvee
        outcome = run_mvee(make_benchmark(name, scale=0.1), variants=2,
                           agent="wall_of_clocks", seed=4,
                           costs=fast_costs)
        assert outcome.verdict == "clean"

    def test_communicating_twin_diverges_without_agent(self, fast_costs):
        from repro.core.mvee import run_mvee
        outcome = run_mvee(make_benchmark("radiosity", scale=0.1),
                           variants=2, agent=None, seed=4,
                           costs=fast_costs, max_cycles=5e9)
        # Schedule-dependent digests differ; the write is cross-checked.
        assert outcome.verdict == "divergence"

    def test_blackscholes_is_loosely_coupled(self, fast_costs):
        """No sync ops at all: even without agents, no divergence."""
        from repro.core.mvee import run_mvee
        outcome = run_mvee(make_benchmark("blackscholes", scale=0.1),
                           variants=2, agent=None, seed=4,
                           costs=fast_costs)
        assert outcome.verdict == "clean"
